"""R12 — worker-shared-state: nothing live crosses the fork boundary.

``repro.perf.pmap_trials`` (and ``map_trials`` / ``Campaign.run(jobs=)``
above it) promise that worker count never changes results.  R7 checks
the *submitted callable* for ambient effects; this rule checks the
*arguments* at the submission site.  A module-level list, dict, open
file handle, or live ``MetricsRegistry``/``TelemetrySink`` instance
captured into a submission — positionally, through
``functools.partial``, or as the receiver of a bound method — is
pickled and **copied** into each worker.  Every worker then mutates its
own private copy: the parent's object never sees the writes
(silently-lost telemetry), and any identity-keyed logic diverges
between ``jobs=1`` (shared object) and ``jobs=N`` (N copies).  This is
the precondition the sharded campaign service needs machine-checked.

The rule is deliberately narrow to stay polarity-safe (no false
positives): it only flags *module-level* names whose binding is
provably a mutable container literal/constructor, an ``open(...)``
handle, or a live observability object, and only when such a name
appears inside a submission call's argument list in the same module.
Locals, parameters, and immutable module constants never fire, and
names captured only inside ``lambda`` bodies are skipped — lambdas are
unpicklable, so the executor already runs them serially in-process.

Fix it by passing plain data derived from the seed (ints, tuples,
frozen specs) and merging worker *results* after the map —
``repro.perf.merge_telemetry`` and ``MetricsRegistry.merge`` exist
exactly so workers can return snapshots instead of sharing a sink.
The runtime counterpart is ``repro sanitize`` with the ``jobs``
perturbation: captured shared state shows up as a ``jobs=1`` vs
``jobs=N`` bit-diff.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.analysis import ProjectContext
from repro.lint.astutil import dotted_name
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.rules.parallel_purity import ParallelPurityRule

#: Constructors whose result is a shared-mutable container.
MUTABLE_FACTORIES = frozenset(
    {"Counter", "OrderedDict", "defaultdict", "deque", "dict", "list", "set"}
)

#: Observability objects that must live on the harness side of a fork.
LIVE_CLASS_NAMES = frozenset({"EventTrace", "MetricsRegistry", "TelemetrySink"})


def _describe_mutable(value: ast.expr) -> str | None:
    """A human label when *value* provably builds shared-mutable state."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return "module-level list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "module-level dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "module-level set"
    if isinstance(value, ast.Call):
        dotted = dotted_name(value.func)
        if dotted is None:
            return None
        last = dotted.rsplit(".", 1)[-1]
        if last == "open":
            return "open file handle"
        if last in MUTABLE_FACTORIES:
            return f"module-level {last}()"
        if last in LIVE_CLASS_NAMES:
            return f"live {last} instance"
    return None


def module_mutables(context: ModuleContext) -> dict[str, tuple[str, int]]:
    """Module-level names provably bound to live/mutable objects."""
    found: dict[str, tuple[str, int]] = {}
    for statement in context.tree.body:
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets = [statement.target]
            value = statement.value
        else:
            continue
        description = _describe_mutable(value)
        if description is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                found[target.id] = (description, statement.lineno)
    return found


def _captured_names(call: ast.Call) -> Iterator[ast.Name]:
    """Every name loaded inside *call*'s arguments, skipping lambdas."""
    roots: list[ast.AST] = list(call.args) + [kw.value for kw in call.keywords]
    stack = roots
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue  # unpicklable: runs serially, nothing crosses a fork
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _local_names(function: ast.AST) -> frozenset[str]:
    """Names bound locally in *function* (params, assignments, loops)."""
    names: set[str] = set()
    if isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
        arguments = function.args
        for arg in (
            arguments.posonlyargs
            + arguments.args
            + arguments.kwonlyargs
            + ([arguments.vararg] if arguments.vararg else [])
            + ([arguments.kwarg] if arguments.kwarg else [])
        ):
            names.add(arg.arg)
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return frozenset(names)


@register
class WorkerSharedStateRule(ProjectRule):
    """Flag live/mutable module state captured at fan-out submissions."""

    rule_id = "R12"
    title = "worker-shared-state"
    invariant = (
        "no module-level mutable object, open handle, or live metrics/"
        "telemetry instance is captured into a pmap_trials / map_trials "
        "/ Campaign submission, so jobs=1 and jobs=N share nothing "
        "across the fork boundary"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info, site in project.call_sites():
            api, submitted = ParallelPurityRule._submission(site)
            if not api:
                continue
            context = project.module_for(info)
            mutables = module_mutables(context)
            if not mutables:
                continue
            locals_ = _local_names(info.node)
            reported: set[str] = set()
            for name in _captured_names(site.node):
                if name.id in locals_ or name.id in reported:
                    continue
                binding = mutables.get(name.id)
                if binding is None:
                    continue
                reported.add(name.id)
                description, defined_line = binding
                yield self.project_finding(
                    info.path,
                    name.lineno,
                    name.col_offset,
                    f"'{name.id}' ({description}, bound at line "
                    f"{defined_line}) is captured at a {api}() submission; "
                    "each worker mutates a pickled private copy, so its "
                    "writes are lost and jobs=1 vs jobs=N diverge — pass "
                    "plain seed-derived data and merge worker results "
                    "after the map",
                )
