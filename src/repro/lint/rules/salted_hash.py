"""R3 — the builtin ``hash()`` never feeds derivation or persistence.

Python salts ``hash()`` for ``str``/``bytes`` per process
(``PYTHONHASHSEED``), so two runs of the same experiment can disagree on
every hash value.  :mod:`repro.sim.rng` already warns about this: seed
derivation must go through BLAKE2b (:func:`repro.sim.rng.derive_seed`).
This rule bans *every* call of the builtin in library code — a hash that
only keys a transient dict is harmless, but the cheap, safe spelling is
to not write one at all, and the dangerous uses (seed material, sort
keys, persisted identifiers) are indistinguishable statically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register


@register
class SaltedHashRule(Rule):
    """Forbid calls to the process-salted builtin ``hash()``."""

    rule_id = "R3"
    title = "no-salted-hash"
    invariant = (
        "seed derivation is a stable BLAKE2b hash (repro.sim.rng."
        "derive_seed); the salted builtin hash() differs across processes"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        shadowed = _locally_bound_names(module.tree)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
                and "hash" not in shadowed
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    "builtin hash() is salted per process "
                    "(PYTHONHASHSEED); use repro.sim.rng.derive_seed for "
                    "stable derivation",
                )


def _locally_bound_names(tree: ast.Module) -> set[str]:
    """Names assigned or imported at module level (builtin shadowing)."""
    bound: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
    return bound
