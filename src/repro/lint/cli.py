"""The ``repro-lint`` command-line interface.

Usage::

    repro-lint [paths ...] [--format text|json] [--select R1,R4]
    repro-lint --list-rules

(Equivalently ``python -m repro lint ...``.)  With no paths the linter
checks ``src/repro``.  Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.registry import all_rules
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import lint_paths


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis enforcing the PODC'15 model invariants: "
            "seeded randomness, no wall clock, no salted hashes, protocol "
            "isolation, frozen records, deterministic iteration."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (e.g. R1,R4)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every rule and exit",
    )
    return parser


def run(
    paths: Sequence[str],
    *,
    output_format: str = "text",
    select: str | None = None,
) -> int:
    """Lint *paths* and print a report; returns the process exit code."""
    targets = list(paths) or ["src/repro"]
    missing = [target for target in targets if not Path(target).exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    selected = (
        [part.strip() for part in select.split(",") if part.strip()]
        if select
        else None
    )
    try:
        findings = lint_paths(targets, select=selected)
    except ValueError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2
    renderer = render_json if output_format == "json" else render_text
    print(renderer(findings))
    return 1 if findings else 0


def list_rules() -> int:
    """Print every registered rule with the invariant it guards."""
    for rule_id, rule in all_rules().items():
        print(f"{rule_id}  {rule.title}")
        print(f"      {rule.invariant}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return list_rules()
    return run(args.paths, output_format=args.format, select=args.select)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
