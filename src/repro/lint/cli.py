"""The ``repro-lint`` command-line interface.

Usage::

    repro-lint [paths ...] [--format text|json|sarif]
               [--select R1,R4] [--ignore R6]
               [--baseline lint-baseline.json] [--update-baseline]
               [--prune-baseline]
    repro-lint --list-rules
    repro-lint --explain R7
    repro-lint effects MODULE:FUNC [--root src/repro]

(Equivalently ``python -m repro lint ...``.)  With no paths the linter
checks ``src/repro``.  Exit status: 0 clean, 1 findings (after baseline
subtraction), 2 usage error.

``effects`` dumps the inferred transitive effect signature of one
function — e.g. ``repro-lint effects repro.sim.engine:Engine.run`` —
with the witness chain that introduces each effect.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import (
    load_baseline,
    partition,
    prune,
    write_baseline,
    write_baseline_counts,
)
from repro.lint.registry import all_rules
from repro.lint.reporters import render_json, render_sarif, render_text
from repro.lint.runner import iter_python_files, lint_paths, load_module

#: Default baseline location (repo root), used by ``--update-baseline``
#: when ``--baseline`` is not given explicitly.
DEFAULT_BASELINE = "lint-baseline.json"

_RENDERERS = {"text": render_text, "json": render_json, "sarif": render_sarif}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis enforcing the PODC'15 model invariants: "
            "seeded randomness, no wall clock, no salted hashes, protocol "
            "isolation, frozen records, deterministic iteration, and the "
            "whole-program effect rules (parallel purity, RNG-stream "
            "discipline, cache-key purity, effect-signature drift, "
            "vector-export contracts, worker-shared state, float "
            "determinism)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint (default: src/repro); "
            "or the subcommand 'effects MODULE:FUNC'"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (e.g. R1,R4)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip (e.g. R6,R10)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of known findings; baselined findings are "
            "subtracted before reporting and do not affect the exit code"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "write the current findings to the baseline file "
            f"(--baseline, default {DEFAULT_BASELINE}) and exit 0"
        ),
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "drop baseline fingerprints the current findings no longer "
            "justify, rewrite the baseline file, report what was removed, "
            "and exit 0 — the ratchet's tightening move"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every rule and exit",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print one rule's full documentation and exit",
    )
    parser.add_argument(
        "--root",
        default="src/repro",
        metavar="PATH",
        help="file set the 'effects' subcommand analyses (default: src/repro)",
    )
    return parser


def _split(spec: str | None) -> list[str] | None:
    if not spec:
        return None
    return [part.strip() for part in spec.split(",") if part.strip()]


def run(
    paths: Sequence[str],
    *,
    output_format: str = "text",
    select: str | None = None,
    ignore: str | None = None,
    baseline: str | None = None,
    update_baseline: bool = False,
    prune_baseline: bool = False,
) -> int:
    """Lint *paths* and print a report; returns the process exit code."""
    if update_baseline and prune_baseline:
        print(
            "repro-lint: --update-baseline and --prune-baseline are "
            "mutually exclusive",
            file=sys.stderr,
        )
        return 2
    targets = list(paths) or ["src/repro"]
    missing = [target for target in targets if not Path(target).exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(targets, select=_split(select), ignore=_split(ignore))
    except (ValueError, FileNotFoundError) as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    baseline_path = baseline or (
        DEFAULT_BASELINE if (update_baseline or prune_baseline) else None
    )
    if prune_baseline:
        try:
            known = load_baseline(baseline_path)
        except (OSError, ValueError) as error:
            print(f"repro-lint: {error}", file=sys.stderr)
            return 2
        pruned, dropped = prune(known, findings)
        write_baseline_counts(baseline_path, pruned)
        removed = sum(dropped.values())
        print(
            f"repro-lint: pruned {removed} stale fingerprint occurrence"
            f"{'s' if removed != 1 else ''} from {baseline_path} "
            f"({len(pruned)} entr{'ies' if len(pruned) != 1 else 'y'} remain)"
        )
        for key in sorted(dropped):
            print(f"  dropped ({dropped[key]}x): {key}")
        return 0
    if update_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"repro-lint: wrote {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} to {baseline_path}"
        )
        return 0

    known_count = 0
    if baseline_path is not None:
        try:
            known = load_baseline(baseline_path)
        except (OSError, ValueError) as error:
            print(f"repro-lint: {error}", file=sys.stderr)
            return 2
        findings, baselined = partition(findings, known)
        known_count = len(baselined)

    output = _RENDERERS[output_format](findings)
    print(output)
    if known_count and output_format == "text":
        print(
            f"(+ {known_count} baselined finding"
            f"{'s' if known_count != 1 else ''} not shown; "
            "shrink the baseline as they are fixed)"
        )
    return 1 if findings else 0


def list_rules() -> int:
    """Print every registered rule with the invariant it guards."""
    for rule_id, rule in all_rules().items():
        print(f"{rule_id}  {rule.title}")
        print(f"      {rule.invariant}")
    return 0


def explain(rule_id: str) -> int:
    """Print one rule's full documentation (its module docstring)."""
    rules = all_rules()
    rule = rules.get(rule_id.upper())
    if rule is None:
        print(
            f"repro-lint: unknown rule {rule_id!r}; known: {', '.join(rules)}",
            file=sys.stderr,
        )
        return 2
    print(f"{rule.rule_id} — {rule.title}")
    print(f"invariant: {rule.invariant}")
    print()
    print(rule.explain())
    return 0


def effects_command(target: str, root: str = "src/repro") -> int:
    """Print the transitive effect signature of ``module:function``."""
    from repro.lint.analysis import build_project

    try:
        files = iter_python_files([root])
    except FileNotFoundError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2
    if not files:
        print(f"repro-lint: no python files under {root}", file=sys.stderr)
        return 2
    from repro.lint.findings import Finding

    modules = [load_module(path) for path in files]
    project = build_project(
        module for module in modules if not isinstance(module, Finding)
    )
    qualname = project.resolve_callable_qualname(target)
    if qualname is None:
        print(
            f"repro-lint: unknown function {target!r} "
            f"(expected MODULE:FUNC, e.g. repro.sim.engine:Engine.run)",
            file=sys.stderr,
        )
        return 2
    print(project.effects.describe(qualname))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return list_rules()
    if args.explain is not None:
        return explain(args.explain)
    if args.paths and args.paths[0] == "effects":
        if len(args.paths) != 2:
            print(
                "repro-lint: usage: repro-lint effects MODULE:FUNC [--root PATH]",
                file=sys.stderr,
            )
            return 2
        return effects_command(args.paths[1], root=args.root)
    return run(
        args.paths,
        output_format=args.format,
        select=args.select,
        ignore=args.ignore,
        baseline=args.baseline,
        update_baseline=args.update_baseline,
        prune_baseline=args.prune_baseline,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
