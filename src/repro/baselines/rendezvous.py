"""The randomized-rendezvous broadcast baseline (paper Section 1).

"A simple strategy to solve local broadcast is for all nodes to run
(randomized) rendezvous with the source transmitting its message in each
slot" — the source broadcasts on a uniformly random channel every slot,
every other node listens on a uniformly random channel, and nobody
relays.  Each listener meets the source with probability ``k/c^2`` per
slot, so completion takes ``O((c^2/k) * lg n)`` slots w.h.p. — a factor
``~c`` slower than COGCAST when ``n >= c``, which experiment E04
measures head to head.

This module also provides the two-node rendezvous primitive itself
(:func:`pairwise_rendezvous_slots`), used to validate the ``c^2/k``
expectation that both baselines inherit.  The measurement harness is
:func:`repro.baselines.runners.run_rendezvous_broadcast`; protocol
modules never import the engine (lint rule R4).
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.messages import InitPayload
from repro.sim.actions import Action, Broadcast, Listen, SlotOutcome
from repro.sim.protocol import NodeView, Protocol
from repro.types import NodeId


class RendezvousBroadcast(Protocol):
    """Non-relaying broadcast: only the source ever transmits."""

    def __init__(self, view: NodeView, *, is_source: bool, body: Any = None) -> None:
        self.view = view
        self.is_source = is_source
        self.informed = is_source
        self.parent: NodeId | None = None
        self.informed_slot: int | None = -1 if is_source else None
        self._message = InitPayload(origin=view.node_id, body=body) if is_source else None

    def begin_slot(self, slot: int) -> Action:
        label = self.view.random_label()
        if self.is_source:
            assert self._message is not None
            return Broadcast(label, self._message)
        return Listen(label)

    def end_slot(self, slot: int, outcome: SlotOutcome) -> None:
        if self.informed:
            return
        if outcome.received is not None and isinstance(
            outcome.received.payload, InitPayload
        ):
            self.informed = True
            self.parent = outcome.received.sender
            self.informed_slot = slot


def pairwise_rendezvous_slots(
    c: int,
    k: int,
    rng: random.Random,
    *,
    max_slots: int = 10_000_000,
) -> int:
    """Slots until two uniformly hopping nodes land on a common channel.

    Simulates the primitive directly: node ``u`` holds channels
    ``0..c-1``, node ``v`` holds ``k`` of them plus ``c-k`` fresh ones,
    both pick uniformly each slot.  Expected value is ``c^2/k``
    (:func:`repro.analysis.theory.rendezvous_expected_slots`).
    """
    if not 1 <= k <= c:
        raise ValueError(f"invalid c={c}, k={k}")
    shared = rng.sample(range(c), k)
    u_channels = list(range(c))
    v_channels = shared + list(range(c, 2 * c - k))
    for slot in range(1, max_slots + 1):
        if rng.choice(u_channels) == rng.choice(v_channels):
            return slot
    raise RuntimeError(f"no rendezvous within {max_slots} slots")
