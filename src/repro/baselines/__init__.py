"""Baselines the paper compares against.

- :mod:`repro.baselines.rendezvous` — non-relaying randomized-rendezvous
  broadcast, ``O((c^2/k) lg n)`` (Section 1).
- :mod:`repro.baselines.aggregation` — rendezvous-based aggregation,
  ``O(c^2 n / k)`` (Section 1).
- :mod:`repro.baselines.hopping` — global-label lockstep scan that beats
  COGCAST when ``c >> n`` (Section 6 discussion).
- :mod:`repro.baselines.runners` — the engine-driving measurement
  harnesses, kept out of the protocol modules (lint rule R4).
"""

from repro.baselines.aggregation import (
    BaselineAggregationResult,
    RendezvousCollector,
    RendezvousReporter,
)
from repro.baselines.deterministic import (
    StayAndScanBroadcast,
    stay_and_scan_pairwise,
)
from repro.baselines.hopping import HoppingTogether
from repro.baselines.rendezvous import (
    RendezvousBroadcast,
    pairwise_rendezvous_slots,
)
from repro.baselines.runners import (
    run_hopping_together,
    run_rendezvous_aggregation,
    run_rendezvous_broadcast,
    run_stay_and_scan_broadcast,
)
from repro.baselines.seeded import (
    PairSetup,
    make_pair,
    repeated_rendezvous_gaps,
)

__all__ = [
    "BaselineAggregationResult",
    "HoppingTogether",
    "PairSetup",
    "RendezvousBroadcast",
    "RendezvousCollector",
    "RendezvousReporter",
    "StayAndScanBroadcast",
    "make_pair",
    "pairwise_rendezvous_slots",
    "repeated_rendezvous_gaps",
    "run_stay_and_scan_broadcast",
    "stay_and_scan_pairwise",
    "run_hopping_together",
    "run_rendezvous_aggregation",
    "run_rendezvous_broadcast",
]
