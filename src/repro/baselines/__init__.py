"""Baselines the paper compares against.

- :mod:`repro.baselines.rendezvous` — non-relaying randomized-rendezvous
  broadcast, ``O((c^2/k) lg n)`` (Section 1).
- :mod:`repro.baselines.aggregation` — rendezvous-based aggregation,
  ``O(c^2 n / k)`` (Section 1).
- :mod:`repro.baselines.hopping` — global-label lockstep scan that beats
  COGCAST when ``c >> n`` (Section 6 discussion).
"""

from repro.baselines.aggregation import (
    BaselineAggregationResult,
    RendezvousCollector,
    RendezvousReporter,
    run_rendezvous_aggregation,
)
from repro.baselines.deterministic import (
    StayAndScanBroadcast,
    run_stay_and_scan_broadcast,
    stay_and_scan_pairwise,
)
from repro.baselines.hopping import HoppingTogether, run_hopping_together
from repro.baselines.rendezvous import (
    RendezvousBroadcast,
    pairwise_rendezvous_slots,
    run_rendezvous_broadcast,
)
from repro.baselines.seeded import (
    PairSetup,
    make_pair,
    repeated_rendezvous_gaps,
)

__all__ = [
    "BaselineAggregationResult",
    "HoppingTogether",
    "PairSetup",
    "RendezvousBroadcast",
    "RendezvousCollector",
    "RendezvousReporter",
    "StayAndScanBroadcast",
    "make_pair",
    "pairwise_rendezvous_slots",
    "repeated_rendezvous_gaps",
    "run_stay_and_scan_broadcast",
    "stay_and_scan_pairwise",
    "run_hopping_together",
    "run_rendezvous_aggregation",
    "run_rendezvous_broadcast",
]
