"""The hopping-together baseline (paper Section 6, global-label discussion).

With *global* channel labels, all nodes can scan the ``C``-channel
universe in lockstep: in slot ``t`` every node that holds channel
``t mod C`` tunes it (the source broadcasts, everyone else listens);
nodes that lack it sit the slot out.  In expectation the scan hits one
of the ``k`` universally shared channels within ``O(C/k)`` slots, and
one hit informs every node at once.

The paper uses this to show COGCAST is *not* optimal for ``c >> n``
under global labels: with ``c = n^2`` and ``k = c - 1``, hopping
together finishes in ``O(1)`` expected slots while COGCAST needs
``Theta(n lg n)`` (experiment E11).  Under local labels the scheme is
impossible — there is no shared channel numbering to scan.

Because the scheme *requires* global knowledge the NodeView deliberately
does not carry, the protocol is constructed with the node's global
channel ids and the universe size — exactly the extra information the
global-label model grants.  The measurement harness is
:func:`repro.baselines.runners.run_hopping_together`; protocol modules
never import the engine (lint rule R4).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.messages import InitPayload
from repro.sim.actions import Action, Broadcast, Idle, Listen, SlotOutcome
from repro.sim.protocol import NodeView, Protocol
from repro.types import Channel, NodeId


class HoppingTogether(Protocol):
    """Sequential-scan broadcast for the global channel label model.

    Parameters
    ----------
    view:
        The node's local view.
    global_channels:
        This node's channels by *global* id, ordered to match its local
        labels (``global_channels[i]`` is local label ``i``).  Only the
        global-label model grants a node this knowledge.
    universe_size:
        ``C`` — the globally known scan period.
    """

    def __init__(
        self,
        view: NodeView,
        global_channels: Sequence[Channel],
        universe_size: int,
        *,
        is_source: bool = False,
        body: Any = None,
    ) -> None:
        if len(global_channels) != view.num_channels:
            raise ValueError("global_channels must list one id per local label")
        self.view = view
        self.universe_size = universe_size
        self._label_of = {channel: label for label, channel in enumerate(global_channels)}
        self.is_source = is_source
        self.informed = is_source
        self.parent: NodeId | None = None
        self.informed_slot: int | None = -1 if is_source else None
        self._message = InitPayload(origin=view.node_id, body=body) if is_source else None

    def begin_slot(self, slot: int) -> Action:
        scanned: Channel = slot % self.universe_size
        label = self._label_of.get(scanned)
        if label is None:
            return Idle()
        if self.informed:
            assert self._message is not None
            return Broadcast(label, self._message)
        return Listen(label)

    def end_slot(self, slot: int, outcome: SlotOutcome) -> None:
        if self.informed:
            return
        if outcome.received is not None and isinstance(
            outcome.received.payload, InitPayload
        ):
            self.informed = True
            self.parent = outcome.received.sender
            self.informed_slot = slot
