"""Measurement harnesses for the baseline protocols.

Engine-driving counterparts of the protocol classes in
:mod:`repro.baselines.rendezvous`, :mod:`repro.baselines.deterministic`,
:mod:`repro.baselines.aggregation`, and :mod:`repro.baselines.hopping`.
As in :mod:`repro.core.runners`, the split is the model's information
asymmetry made structural: protocol modules hold only node-side code
(lint rule R4), while these harnesses own the world — networks, engines,
and global channel ids.

As in :mod:`repro.core.runners`, every runner takes optional
observability instruments (probe, profiler, telemetry sink) so baseline
runs leave the same ``kind="run"`` manifests as the core protocols.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Sequence

from repro.baselines.aggregation import (
    BaselineAggregationResult,
    RendezvousCollector,
    RendezvousReporter,
)
from repro.baselines.deterministic import StayAndScanBroadcast
from repro.baselines.hopping import HoppingTogether
from repro.baselines.rendezvous import RendezvousBroadcast
from repro.core.cogcast import BroadcastResult
from repro.obs.metrics import MetricsProbe
from repro.obs.probe import MultiProbe
from repro.obs.telemetry import run_record
from repro.sim.backends import AllInformed, resolve_backend
from repro.sim.channels import ChannelAssignment, Network
from repro.sim.collision import CollisionModel
from repro.sim.engine import Engine, build_engine, make_views
from repro.sim.protocol import NodeView, Protocol
from repro.types import NodeId

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.metrics import MetricsRegistry, ResourceSampler
    from repro.obs.probe import SlotProbe
    from repro.obs.profiler import Profiler
    from repro.obs.telemetry import TelemetrySink
    from repro.sim.backends import EngineBackend


def _engine_probe(
    probe: "SlotProbe | None",
    metrics: "MetricsRegistry | None",
    protocol: str,
) -> "SlotProbe | None":
    """Compose the user probe with a metrics probe when a registry is given."""
    if metrics is None:
        return probe
    metrics_probe = MetricsProbe(metrics, protocol=protocol)
    if probe is None:
        return metrics_probe
    return MultiProbe([probe, metrics_probe])


def _emit_run(
    telemetry: "TelemetrySink | None",
    *,
    protocol: str,
    seed: int,
    network: Network,
    slots: int,
    completed: bool,
    probe: "SlotProbe | None",
    profiler: "Profiler | None",
    metrics: "MetricsRegistry | None" = None,
    resources: "ResourceSampler | None" = None,
    elapsed_s: float | None = None,
    fast_path: bool | None = None,
    backend: str | None = None,
    vector_fallback_reason: str | None = None,
) -> None:
    """Emit one run manifest when a telemetry sink is attached.

    *backend* / *vector_fallback_reason* record the execution path, as
    in :func:`repro.core.runners._emit_run`.
    """
    if telemetry is not None:
        telemetry.emit(
            run_record(
                protocol=protocol,
                seed=seed,
                network=network,
                slots=slots,
                outcome="completed" if completed else "budget",
                probe=probe,
                profiler=profiler,
                metrics=metrics,
                resources=None if resources is None else resources.delta(),
                elapsed_s=elapsed_s,
                fast_path=fast_path,
                backend=backend,
                vector_fallback_reason=vector_fallback_reason,
            )
        )


def _broadcast_result(result: Any, protocols: Sequence[Any]) -> BroadcastResult:
    """Fold per-node informed state into a :class:`BroadcastResult`."""
    return BroadcastResult(
        slots=result.slots,
        completed=result.completed,
        informed_count=sum(protocol.informed for protocol in protocols),
        parents=tuple(protocol.parent for protocol in protocols),
        informed_slots=tuple(protocol.informed_slot for protocol in protocols),
    )


def run_rendezvous_broadcast(
    network: Network,
    *,
    source: NodeId = 0,
    seed: int = 0,
    max_slots: int,
    body: Any = None,
    collision: CollisionModel | None = None,
    probe: "SlotProbe | None" = None,
    profiler: "Profiler | None" = None,
    metrics: "MetricsRegistry | None" = None,
    resources: "ResourceSampler | None" = None,
    telemetry: "TelemetrySink | None" = None,
    backend: "str | EngineBackend | None" = None,
) -> BroadcastResult:
    """Run the baseline until every node has heard the source."""

    def factory(view: NodeView) -> RendezvousBroadcast:
        return RendezvousBroadcast(
            view, is_source=(view.node_id == source), body=body
        )

    engine = build_engine(
        network,
        factory,
        seed=seed,
        collision=collision,
        probe=_engine_probe(probe, metrics, "rendezvous-broadcast"),
        profiler=profiler,
        backend=backend,
    )
    protocols: list[RendezvousBroadcast] = engine.protocols  # type: ignore[assignment]

    run_start = perf_counter()
    result = engine.run(max_slots, stop_when=AllInformed(protocols))
    elapsed_s = perf_counter() - run_start
    _emit_run(
        telemetry,
        protocol="rendezvous-broadcast",
        seed=seed,
        network=network,
        slots=result.slots,
        completed=result.completed,
        probe=probe,
        profiler=profiler,
        metrics=metrics,
        resources=resources,
        elapsed_s=elapsed_s,
        fast_path=engine.fast_path_engaged,
        backend=resolve_backend(backend).name,
        vector_fallback_reason=getattr(engine, "vector_fallback_reason", None),
    )
    return _broadcast_result(result, protocols)


def run_stay_and_scan_broadcast(
    network: Network,
    *,
    source: NodeId = 0,
    seed: int = 0,
    max_slots: int | None = None,
    body: Any = None,
    collision: CollisionModel | None = None,
    probe: "SlotProbe | None" = None,
    profiler: "Profiler | None" = None,
    metrics: "MetricsRegistry | None" = None,
    resources: "ResourceSampler | None" = None,
    telemetry: "TelemetrySink | None" = None,
    backend: "str | EngineBackend | None" = None,
) -> BroadcastResult:
    """Run the deterministic broadcast to completion (<= c^2 slots)."""
    c = network.channels_per_node
    budget = max_slots if max_slots is not None else c * c

    def factory(view: NodeView) -> StayAndScanBroadcast:
        return StayAndScanBroadcast(
            view, is_source=(view.node_id == source), body=body
        )

    engine = build_engine(
        network,
        factory,
        seed=seed,
        collision=collision,
        probe=_engine_probe(probe, metrics, "stay-and-scan"),
        profiler=profiler,
        backend=backend,
    )
    protocols: list[StayAndScanBroadcast] = engine.protocols  # type: ignore[assignment]

    run_start = perf_counter()
    result = engine.run(budget, stop_when=AllInformed(protocols))
    elapsed_s = perf_counter() - run_start
    _emit_run(
        telemetry,
        protocol="stay-and-scan",
        seed=seed,
        network=network,
        slots=result.slots,
        completed=result.completed,
        probe=probe,
        profiler=profiler,
        metrics=metrics,
        resources=resources,
        elapsed_s=elapsed_s,
        fast_path=engine.fast_path_engaged,
        backend=resolve_backend(backend).name,
        vector_fallback_reason=getattr(engine, "vector_fallback_reason", None),
    )
    return _broadcast_result(result, protocols)


def run_rendezvous_aggregation(
    network: Network,
    values: Sequence[Any],
    *,
    source: NodeId = 0,
    seed: int = 0,
    max_slots: int,
    collision: CollisionModel | None = None,
    probe: "SlotProbe | None" = None,
    profiler: "Profiler | None" = None,
    metrics: "MetricsRegistry | None" = None,
    resources: "ResourceSampler | None" = None,
    telemetry: "TelemetrySink | None" = None,
    backend: "str | EngineBackend | None" = None,
) -> BaselineAggregationResult:
    """Run the baseline until the source holds every node's value."""
    n = network.num_nodes
    if len(values) != n:
        raise ValueError(f"{len(values)} values for {n} nodes")

    def factory(view: NodeView) -> Protocol:
        if view.node_id == source:
            return RendezvousCollector(view)
        return RendezvousReporter(view, values[view.node_id])

    engine = build_engine(
        network,
        factory,
        seed=seed,
        collision=collision,
        probe=_engine_probe(probe, metrics, "rendezvous-aggregation"),
        profiler=profiler,
        backend=backend,
    )
    collector: RendezvousCollector = engine.protocols[source]  # type: ignore[assignment]

    def all_collected(_: Engine) -> bool:
        return len(collector.collected) >= n - 1

    run_start = perf_counter()
    result = engine.run(max_slots, stop_when=all_collected)
    elapsed_s = perf_counter() - run_start
    _emit_run(
        telemetry,
        protocol="rendezvous-aggregation",
        seed=seed,
        network=network,
        slots=result.slots,
        completed=result.completed,
        probe=probe,
        profiler=profiler,
        metrics=metrics,
        resources=resources,
        elapsed_s=elapsed_s,
        fast_path=engine.fast_path_engaged,
        backend=resolve_backend(backend).name,
        vector_fallback_reason=getattr(engine, "vector_fallback_reason", None),
    )
    return BaselineAggregationResult(
        slots=result.slots,
        completed=result.completed,
        collected=dict(collector.collected),
    )


def run_hopping_together(
    assignment: ChannelAssignment,
    *,
    source: NodeId = 0,
    seed: int = 0,
    max_slots: int,
    body: Any = None,
    collision: CollisionModel | None = None,
    probe: "SlotProbe | None" = None,
    profiler: "Profiler | None" = None,
    metrics: "MetricsRegistry | None" = None,
    resources: "ResourceSampler | None" = None,
    telemetry: "TelemetrySink | None" = None,
    backend: "str | EngineBackend | None" = None,
) -> BroadcastResult:
    """Run the lockstep scan until every node is informed.

    Takes the :class:`ChannelAssignment` directly (not a network)
    because the protocol legitimately needs each node's global channel
    ids; the scan period is ``max(universe) + 1``, matching the dense
    global numbering the generators produce.
    """
    network = Network.static(assignment)
    universe_size = max(assignment.universe) + 1
    views = make_views(network, seed)
    protocols = [
        HoppingTogether(
            view,
            assignment.channels[view.node_id],
            universe_size,
            is_source=(view.node_id == source),
            body=body,
        )
        for view in views
    ]
    engine = resolve_backend(backend).build(
        network,
        protocols,
        seed=seed,
        collision=collision,
        probe=_engine_probe(probe, metrics, "hopping-together"),
        profiler=profiler,
    )

    run_start = perf_counter()
    result = engine.run(max_slots, stop_when=AllInformed(protocols))
    elapsed_s = perf_counter() - run_start
    _emit_run(
        telemetry,
        protocol="hopping-together",
        seed=seed,
        network=network,
        slots=result.slots,
        completed=result.completed,
        probe=probe,
        profiler=profiler,
        metrics=metrics,
        resources=resources,
        elapsed_s=elapsed_s,
        fast_path=engine.fast_path_engaged,
        backend=resolve_backend(backend).name,
        vector_fallback_reason=getattr(engine, "vector_fallback_reason", None),
    )
    return _broadcast_result(result, protocols)
