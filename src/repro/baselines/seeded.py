"""Seed-exchange rendezvous (the paper's footnote 1).

The rendezvous literature prefers determinism partly because two nodes
that have met once can compute each other's schedule forever after.
Footnote 1 observes randomization achieves the same: *"nodes can swap
the seed for a pseudorandom number generator"*.

This module implements that repeated-rendezvous pattern for a node
pair:

- **before the first meeting** each node hops uniformly over its own
  ``c`` channels using its private PRNG — expected ``c^2/k`` slots to
  meet (the randomized bound from Section 1);
- **at the first meeting** the nodes exchange seeds and their labels
  for the channels they just discovered they share (the meeting channel
  plus, in one message, their full sets — a single-slot exchange in the
  model since message size is unbounded for control traffic);
- **after the exchange** both derive a common pseudorandom sequence
  over their *shared* channels from the combined seed, so they meet in
  **every** subsequent slot.

:func:`repeated_rendezvous_gaps` measures the inter-meeting gaps and is
the basis of the footnote's claim: gap #1 is ~``c^2/k``, every later
gap is exactly 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.rng import derive_rng


@dataclass(frozen=True, slots=True)
class PairSetup:
    """A two-node instance: channel sets with overlap exactly ``k``."""

    u_channels: tuple[int, ...]
    v_channels: tuple[int, ...]
    shared: tuple[int, ...]


def make_pair(c: int, k: int, rng: random.Random) -> PairSetup:
    """Node ``u`` holds ``0..c-1``; ``v`` holds ``k`` of those plus fresh ones."""
    if not 1 <= k <= c:
        raise ValueError(f"invalid c={c}, k={k}")
    shared = tuple(sorted(rng.sample(range(c), k)))
    fresh = tuple(range(c, 2 * c - k))
    v_channels = list(shared + fresh)
    rng.shuffle(v_channels)
    return PairSetup(
        u_channels=tuple(range(c)),
        v_channels=tuple(v_channels),
        shared=shared,
    )


def repeated_rendezvous_gaps(
    c: int,
    k: int,
    seed: int,
    *,
    meetings: int = 5,
    max_slots: int = 10_000_000,
    exchange_seeds: bool = True,
) -> list[int]:
    """Slots between consecutive meetings of one node pair.

    With ``exchange_seeds=True`` (footnote 1's scheme) the first gap is
    the usual randomized rendezvous and every later gap is 1.  With
    ``exchange_seeds=False`` every meeting is a fresh uniform search —
    the memoryless control.

    Returns ``meetings`` gap values.
    """
    setup = make_pair(c, k, derive_rng(seed, "pair"))
    u_rng = derive_rng(seed, "u")
    v_rng = derive_rng(seed, "v")
    gaps: list[int] = []
    met_once = False
    shared_rng: random.Random | None = None
    slot = 0
    gap_start = 0
    while len(gaps) < meetings:
        slot += 1
        if slot - gap_start > max_slots:
            raise RuntimeError(f"no meeting within {max_slots} slots")
        if met_once and exchange_seeds:
            # Both nodes derive the same channel from the swapped seed;
            # they meet deterministically every slot.
            assert shared_rng is not None
            channel = setup.shared[shared_rng.randrange(len(setup.shared))]
            u_choice = v_choice = channel
        else:
            u_choice = setup.u_channels[u_rng.randrange(c)]
            v_choice = setup.v_channels[v_rng.randrange(c)]
        if u_choice == v_choice:
            gaps.append(slot - gap_start)
            gap_start = slot
            if not met_once:
                met_once = True
                # The swapped seed: both sides can compute it from the
                # pair of seeds they exchanged at the meeting.
                shared_rng = derive_rng(seed, "swapped")
    return gaps
