"""Deterministic stay-and-scan rendezvous (the §1 determinism comparison).

The rendezvous literature the paper responds to favours deterministic
schedules with ``O(c^2)`` guarantees; Section 1 notes uniform random
hopping achieves ``O(c^2/k)`` — *better for non-constant k* — at the
price of a (tunable) failure probability.

This module implements the classic asymmetric deterministic scheme for
our synchronized-start model, usable whenever one party is
distinguished (exactly the local-broadcast setting, where the source
is):

- the **stayer** dwells on its local channel ``floor(t / c) mod c``,
  spending ``c`` consecutive slots on each of its channels;
- the **scanner** sweeps ``t mod c``, visiting all its channels once
  per ``c`` slots.

Within ``c^2`` slots every (stayer-channel, scanner-channel) pair
occurs, so the pair provably meets on some shared channel regardless of
label order — zero failure probability, but a flat ``Theta(c^2)`` cost
that randomization beats by a factor ``k`` (experiment E21).

The measurement harness is
:func:`repro.baselines.runners.run_stay_and_scan_broadcast`; protocol
modules never import the engine (lint rule R4).
"""

from __future__ import annotations

import random
from typing import Any

from repro.baselines.seeded import make_pair
from repro.core.messages import InitPayload
from repro.sim.actions import Action, Broadcast, Listen, SlotOutcome
from repro.sim.protocol import NodeView, Protocol
from repro.types import NodeId


def stay_and_scan_pairwise(
    c: int,
    k: int,
    rng: random.Random,
    *,
    max_slots: int | None = None,
) -> int:
    """Slots until a stayer/scanner pair meets (guaranteed <= c^2).

    The instance (which k channels are shared, and both nodes' label
    orders) is random; the schedule is deterministic.
    """
    setup = make_pair(c, k, rng)
    u_order = list(setup.u_channels)
    v_order = list(setup.v_channels)
    rng.shuffle(u_order)
    rng.shuffle(v_order)
    budget = max_slots if max_slots is not None else c * c
    for slot in range(budget):
        stayer_channel = u_order[(slot // c) % c]
        scanner_channel = v_order[slot % c]
        if stayer_channel == scanner_channel:
            return slot + 1
    raise AssertionError(
        f"stay-and-scan must meet within c^2 = {c * c} slots"
    )


class StayAndScanBroadcast(Protocol):
    """Deterministic local broadcast: source dwells, everyone else scans.

    Every listener provably hears the source within ``c^2`` slots (its
    scan crosses each of the source's dwell blocks on every one of its
    own channels, and at least ``k`` of those are shared).
    """

    def __init__(self, view: NodeView, *, is_source: bool, body: Any = None) -> None:
        self.view = view
        self.is_source = is_source
        self.informed = is_source
        self.parent: NodeId | None = None
        self.informed_slot: int | None = -1 if is_source else None
        self._message = InitPayload(origin=view.node_id, body=body) if is_source else None

    def begin_slot(self, slot: int) -> Action:
        c = self.view.num_channels
        if self.is_source:
            label = (slot // c) % c
            assert self._message is not None
            return Broadcast(label, self._message)
        return Listen(slot % c)

    def end_slot(self, slot: int, outcome: SlotOutcome) -> None:
        if self.informed:
            return
        if outcome.received is not None and isinstance(
            outcome.received.payload, InitPayload
        ):
            self.informed = True
            self.parent = outcome.received.sender
            self.informed_slot = slot
