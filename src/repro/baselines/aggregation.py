"""The randomized-rendezvous aggregation baseline (paper Section 1).

"The source node should listen while the non-source nodes transmit
their data.  [...] if multiple nodes share the same channel during the
rendezvous, only one can succeed in its transmission.  As n grows, this
crowding will also grow.  Assuming that the contention resolution is
fair, the obvious upper bound for this straightforward strategy is
``O(c^2 n / k)``."

Implementation: the source hops uniformly and listens; every other node
hops uniformly and broadcasts its ``(id, value)`` report every slot
(it has no way to learn the source heard it, so it never stops).  The
run completes when the source has collected all ``n - 1`` reports.
Experiment E06 races this against COGCOMP.

The measurement harness is
:func:`repro.baselines.runners.run_rendezvous_aggregation`; protocol
modules never import the engine (lint rule R4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.messages import ValueReportPayload
from repro.sim.actions import Action, Broadcast, Listen, SlotOutcome
from repro.sim.protocol import NodeView, Protocol
from repro.types import NodeId


class RendezvousReporter(Protocol):
    """A non-source node: broadcast the datum on a random channel, forever."""

    def __init__(self, view: NodeView, value: Any) -> None:
        self.view = view
        self._payload = ValueReportPayload(cluster_slot=-1, value=value)

    def begin_slot(self, slot: int) -> Action:
        return Broadcast(self.view.random_label(), self._payload)

    def end_slot(self, slot: int, outcome: SlotOutcome) -> None:
        return None


class RendezvousCollector(Protocol):
    """The source: listen on a random channel, collect distinct reports."""

    def __init__(self, view: NodeView) -> None:
        self.view = view
        self.collected: dict[NodeId, Any] = {}

    def begin_slot(self, slot: int) -> Action:
        return Listen(self.view.random_label())

    def end_slot(self, slot: int, outcome: SlotOutcome) -> None:
        if outcome.received is not None and isinstance(
            outcome.received.payload, ValueReportPayload
        ):
            sender = outcome.received.sender
            if sender not in self.collected:
                self.collected[sender] = outcome.received.payload.value


@dataclass(frozen=True, slots=True)
class BaselineAggregationResult:
    """Outcome of one rendezvous-aggregation run."""

    slots: int
    completed: bool
    collected: dict[NodeId, Any]
