"""Dual-run determinism sanitizer: ``repro sanitize <experiment>``.

The reproduction's central promise is that every table is a pure
function of ``(experiment, trials, seed, fast)`` — not of the hash
seed, the worker count, or the engine backend.  The lint rules check
that promise statically (R1–R13); this module checks it *dynamically*,
the way the paper's model demands: run the same seeded entry point
twice under perturbed ambient conditions and bit-diff what comes out.

One **capture** is a subprocess run of the entry point under pinned
conditions (``PYTHONHASHSEED``, ``jobs``, engine backend) that writes a
JSON snapshot: the result table's rows plus the normalized telemetry
and metrics records the run emitted.  Normalization strips exactly the
fields that are *allowed* to vary — wall-clock timings, resource
samples, and timing-category metrics — so everything that remains is
covered by the determinism contract and must match bit for bit.

One **check** perturbs a single condition against the control capture
(``PYTHONHASHSEED=0, jobs=1, backend=exact``):

- ``hashseed`` — a different ``PYTHONHASHSEED``: catches iteration
  order leaking out of salted ``dict``/``set`` hashing (rule R6's
  runtime twin);
- ``jobs`` — ``jobs=1`` vs ``jobs=N``: catches worker-shared state and
  scheduling leaks across the fork boundary (R7/R12's runtime twin);
- ``backend`` — exact engine vs ``vector-replay``: catches hidden
  protocol state the columnar kernel does not replay (R11's runtime
  twin; Tier-A replay mode is bit-identical *by contract*).

A divergence report pinpoints the **first divergent record** — its
index, kind, and the differing field paths with both values — plus the
record's span context when the run carried one.  Exit status: 0 all
checks clean, 1 divergence, 2 usage error.

The experiment argument is a registered id (``E01``) or a
``module:function`` entry point with the ``run(trials=, seed=, fast=)``
signature, so test fixtures and future campaign shards gate through
the same door.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

#: Snapshot schema tag; bump when the capture layout changes.
CAPTURE_SCHEMA = "sanitize-capture-1"

#: Telemetry fields that are allowed to vary between runs (timing and
#: host facts), stripped before the bit-diff.
_VOLATILE_FIELDS = ("elapsed_s", "resources", "timings")

#: Telemetry fields that legitimately differ across the sanitizer's own
#: perturbed conditions — the backend check runs ``exact`` against
#: ``vector-replay``, so execution-identity fields (``backend``,
#: ``fast_path``, ``vector_fallback_reason``) and the provenance block
#: (whose config hash includes the backend) must not count as
#: divergence.  Stripped alongside the volatile fields.
_CONDITION_FIELDS = ("backend", "fast_path", "vector_fallback_reason", "provenance")

#: The perturbations ``sanitize`` knows how to apply, in run order.
CHECKS = ("hashseed", "jobs", "backend")

#: Control conditions every perturbation is compared against.
CONTROL_HASHSEED = "0"
PERTURBED_HASHSEED = "4242"


@dataclass(frozen=True)
class Conditions:
    """The ambient conditions one capture runs under."""

    hashseed: str
    jobs: int
    backend: str

    def label(self) -> str:
        return f"hashseed={self.hashseed} jobs={self.jobs} backend={self.backend}"

    def as_dict(self) -> dict[str, Any]:
        return {"hashseed": self.hashseed, "jobs": self.jobs, "backend": self.backend}


CONTROL = Conditions(hashseed=CONTROL_HASHSEED, jobs=1, backend="exact")


class SanitizeError(RuntimeError):
    """A capture subprocess failed; carries its stderr tail."""


# ----------------------------------------------------------------------
# Capture: one entry-point run → one snapshot
# ----------------------------------------------------------------------


class _ListSink:
    """An in-memory telemetry sink (any ``emit()`` object works)."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: Mapping[str, Any]) -> None:
        self.records.append(dict(record))


def _canonical(value: Any) -> Any:
    """A JSON-stable form of *value* for bit-diffing.

    Floats stay floats (``json`` serializes the shortest round-trip
    repr, which is bit-faithful for doubles); anything not JSON-native
    is reduced to ``repr()`` so exotic row values still diff sanely.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): _canonical(value[key]) for key in value}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return repr(value)


def _normalize_telemetry(record: Mapping[str, Any]) -> dict[str, Any]:
    """Strip the fields the determinism contract does not cover."""
    normalized = {
        key: _canonical(value)
        for key, value in record.items()
        if key not in _VOLATILE_FIELDS and key not in _CONDITION_FIELDS
    }
    metrics = normalized.get("metrics")
    if isinstance(metrics, dict) and isinstance(metrics.get("metrics"), list):
        metrics = dict(metrics)
        metrics["metrics"] = [
            entry
            for entry in metrics["metrics"]
            if not (isinstance(entry, dict) and entry.get("category") == "timing")
        ]
        normalized["metrics"] = metrics
    return normalized


def resolve_entry(target: str) -> Any:
    """Resolve *target* to an :class:`ExperimentSpec`-shaped object.

    ``E01`` goes through the experiment registry; ``module:function``
    imports the module and wraps the callable, so fixtures and external
    entry points sanitize through the same machinery.
    """
    from repro.experiments.harness import ExperimentSpec

    if ":" in target:
        import importlib

        module_name, _, function_name = target.partition(":")
        module = importlib.import_module(module_name)
        entry: Callable[..., Any] = getattr(module, function_name)
        return ExperimentSpec(
            experiment_id=target,
            title=f"sanitize entry {target}",
            claim="deterministic in (trials, seed, fast)",
            run=entry,
        )
    from repro.experiments.registry import get

    return get(target.upper())


def run_capture(
    target: str,
    *,
    trials: int | None = None,
    seed: int = 0,
    fast: bool = False,
    jobs: int = 1,
    backend: str = "exact",
) -> dict[str, Any]:
    """Run *target* once in-process and build its snapshot document.

    The snapshot holds one record per table row (the protocol-level
    ground truth), followed by the normalized telemetry the run
    emitted.  Everything in ``records`` is covered by the determinism
    contract; the ``conditions``/``pool`` provenance is not diffed.
    """
    from repro.experiments.harness import run_with_telemetry
    from repro.perf import default_jobs, pool_fingerprint, set_default_jobs
    from repro.sim.backends import backend_scope

    spec = resolve_entry(target)
    sink = _ListSink()
    previous_jobs = default_jobs()
    set_default_jobs(jobs)
    try:
        with backend_scope(backend):
            table = run_with_telemetry(
                spec, sink, trials=trials, seed=seed, fast=fast
            )
    finally:
        set_default_jobs(previous_jobs)

    records: list[dict[str, Any]] = [
        {
            "kind": "table",
            "experiment_id": table.experiment_id,
            "columns": list(table.columns),
        }
    ]
    for index, row in enumerate(table.rows):
        records.append(
            {
                "kind": "row",
                "index": index,
                "values": {
                    column: _canonical(value)
                    for column, value in zip(table.columns, row)
                },
            }
        )
    for record in sink.records:
        records.append(
            {"kind": "telemetry", "record": _normalize_telemetry(record)}
        )
    return {
        "schema": CAPTURE_SCHEMA,
        "experiment": target,
        "seed": seed,
        "trials": trials,
        "fast": fast,
        "conditions": {
            "hashseed": os.environ.get("PYTHONHASHSEED", "random"),
            "jobs": jobs,
            "backend": backend,
        },
        "pool": pool_fingerprint(),
        "records": records,
    }


def capture_subprocess(
    target: str,
    conditions: Conditions,
    out_path: str | Path,
    *,
    trials: int | None = None,
    seed: int = 0,
    fast: bool = False,
    timeout: float = 600.0,
) -> dict[str, Any]:
    """Run one capture in a fresh interpreter and load its snapshot.

    A subprocess is the only honest way to perturb ``PYTHONHASHSEED``:
    it is read once at interpreter start.  The child runs
    ``python -m repro sanitize <target> --capture <file>`` with the
    condition's hash seed pinned in its environment.
    """
    command = [
        sys.executable,
        "-m",
        "repro",
        "sanitize",
        target,
        "--capture",
        str(out_path),
        "--seed",
        str(seed),
        "--jobs",
        str(conditions.jobs),
        "--backend",
        conditions.backend,
    ]
    if trials is not None:
        command += ["--trials", str(trials)]
    if fast:
        command.append("--fast")
    environment = dict(os.environ)
    environment["PYTHONHASHSEED"] = conditions.hashseed
    completed = subprocess.run(
        command,
        env=environment,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    if completed.returncode != 0:
        tail = (completed.stderr or completed.stdout or "").strip()[-2000:]
        raise SanitizeError(
            f"capture under {conditions.label()} exited "
            f"{completed.returncode}: {tail}"
        )
    return json.loads(Path(out_path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Diff: two snapshots → the first divergent record
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FieldDelta:
    """One differing field inside a divergent record."""

    path: str
    control: Any
    perturbed: Any


@dataclass(frozen=True)
class Divergence:
    """The first record where two captures stop being bit-identical."""

    index: int
    kind: str
    identity: str
    deltas: tuple[FieldDelta, ...]
    span_context: Any = None

    def describe(self) -> str:
        parts = [f"record #{self.index} ({self.identity})"]
        for delta in self.deltas:
            parts.append(
                f"  {delta.path}: control={delta.control!r} "
                f"perturbed={delta.perturbed!r}"
            )
        if self.span_context is not None:
            parts.append(f"  span context: {self.span_context!r}")
        return "\n".join(parts)


def _field_deltas(prefix: str, control: Any, perturbed: Any) -> list[FieldDelta]:
    """Recursively collect differing leaf paths between two values."""
    if isinstance(control, dict) and isinstance(perturbed, dict):
        deltas: list[FieldDelta] = []
        for key in sorted(set(control) | set(perturbed)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in control:
                deltas.append(FieldDelta(path, "<absent>", perturbed[key]))
            elif key not in perturbed:
                deltas.append(FieldDelta(path, control[key], "<absent>"))
            else:
                deltas.extend(_field_deltas(path, control[key], perturbed[key]))
        return deltas
    if isinstance(control, list) and isinstance(perturbed, list):
        deltas = []
        for position in range(max(len(control), len(perturbed))):
            path = f"{prefix}[{position}]"
            if position >= len(control):
                deltas.append(FieldDelta(path, "<absent>", perturbed[position]))
            elif position >= len(perturbed):
                deltas.append(FieldDelta(path, control[position], "<absent>"))
            else:
                deltas.extend(
                    _field_deltas(path, control[position], perturbed[position])
                )
        return deltas
    if control != perturbed or type(control) is not type(perturbed):
        return [FieldDelta(prefix or "<value>", control, perturbed)]
    return []


def _record_identity(record: Mapping[str, Any]) -> str:
    kind = record.get("kind", "?")
    if kind == "row":
        return f"kind=row index={record.get('index')}"
    if kind == "telemetry":
        inner = record.get("record", {})
        return f"kind=telemetry telemetry-kind={inner.get('kind', '?')}"
    return f"kind={kind}"


def diff_captures(
    control: Mapping[str, Any], perturbed: Mapping[str, Any]
) -> Divergence | None:
    """The first divergent record between two snapshots, or ``None``.

    Records are compared pairwise in emission order via their canonical
    JSON forms — a bit-diff, not a tolerance check: the determinism
    contract is exact equality.
    """
    control_records = list(control.get("records", []))
    perturbed_records = list(perturbed.get("records", []))
    for index in range(min(len(control_records), len(perturbed_records))):
        left, right = control_records[index], perturbed_records[index]
        if json.dumps(left, sort_keys=True) == json.dumps(right, sort_keys=True):
            continue
        deltas = tuple(_field_deltas("", left, right)) or (
            FieldDelta("<record>", left, right),
        )
        span_context = None
        for candidate in (left, right):
            inner = candidate.get("record", candidate)
            if isinstance(inner, Mapping) and inner.get("spans") is not None:
                span_context = inner["spans"]
                break
        return Divergence(
            index=index,
            kind=str(left.get("kind", "?")),
            identity=_record_identity(left),
            deltas=deltas,
            span_context=span_context,
        )
    if len(control_records) != len(perturbed_records):
        index = min(len(control_records), len(perturbed_records))
        longer = control_records if len(control_records) > len(
            perturbed_records
        ) else perturbed_records
        return Divergence(
            index=index,
            kind=str(longer[index].get("kind", "?")),
            identity=(
                f"record count differs: control={len(control_records)} "
                f"perturbed={len(perturbed_records)}"
            ),
            deltas=(
                FieldDelta(
                    "<record count>", len(control_records), len(perturbed_records)
                ),
            ),
        )
    return None


# ----------------------------------------------------------------------
# The sanitize driver
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one perturbation check."""

    name: str
    perturbed: Conditions
    divergence: Divergence | None = None
    skipped: str | None = None

    @property
    def clean(self) -> bool:
        return self.divergence is None and self.skipped is None


@dataclass
class SanitizeReport:
    """Everything one ``repro sanitize`` invocation learned."""

    experiment: str
    control: Conditions
    checks: list[CheckResult] = field(default_factory=list)
    pool: dict[str, Any] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        return 1 if any(check.divergence is not None for check in self.checks) else 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": "sanitize-report-1",
            "experiment": self.experiment,
            "control": self.control.as_dict(),
            "pool": self.pool,
            "clean": self.exit_code == 0,
            "checks": [
                {
                    "name": check.name,
                    "perturbed": check.perturbed.as_dict(),
                    "skipped": check.skipped,
                    "divergence": None
                    if check.divergence is None
                    else {
                        "index": check.divergence.index,
                        "kind": check.divergence.kind,
                        "identity": check.divergence.identity,
                        "deltas": [
                            {
                                "path": delta.path,
                                "control": delta.control,
                                "perturbed": delta.perturbed,
                            }
                            for delta in check.divergence.deltas
                        ],
                        "span_context": check.divergence.span_context,
                    },
                }
                for check in self.checks
            ],
        }

    def render(self) -> str:
        lines = [
            f"sanitize {self.experiment} — control: {self.control.label()}"
        ]
        for check in self.checks:
            if check.skipped is not None:
                lines.append(
                    f"  [skip] {check.name} ({check.perturbed.label()}): "
                    f"{check.skipped}"
                )
            elif check.divergence is None:
                lines.append(
                    f"  [ok]   {check.name} ({check.perturbed.label()}): "
                    "bit-identical"
                )
            else:
                lines.append(
                    f"  [DIVERGED] {check.name} ({check.perturbed.label()}): "
                    "first divergent "
                    + check.divergence.describe().replace("\n", "\n    ")
                )
        verdict = (
            "clean: results are independent of hash seed, worker count, "
            "and backend"
            if self.exit_code == 0
            else "DIVERGENCE: the run depends on ambient conditions it must not"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _perturbed_conditions(name: str, jobs: int) -> Conditions:
    if name == "hashseed":
        return Conditions(hashseed=PERTURBED_HASHSEED, jobs=1, backend="exact")
    if name == "jobs":
        return Conditions(hashseed=CONTROL_HASHSEED, jobs=jobs, backend="exact")
    if name == "backend":
        return Conditions(hashseed=CONTROL_HASHSEED, jobs=1, backend="vector-replay")
    raise ValueError(f"unknown sanitize check {name!r}; known: {', '.join(CHECKS)}")


def sanitize(
    target: str,
    *,
    trials: int | None = None,
    seed: int = 0,
    fast: bool = False,
    jobs: int = 2,
    checks: Sequence[str] = CHECKS,
    workdir: str | Path | None = None,
) -> SanitizeReport:
    """Run the control capture plus one capture per perturbation check.

    Captures run in subprocesses (the hash seed demands it) inside
    *workdir* (a temporary directory by default, kept if given
    explicitly).  The ``backend`` check is skipped with a note when
    numpy is unavailable — the vector backend cannot run without it.
    """
    from repro.perf import pool_fingerprint
    from repro.sim.backends.base import numpy_available

    unknown = [name for name in checks if name not in CHECKS]
    if unknown:
        raise ValueError(
            f"unknown sanitize check(s) {', '.join(unknown)}; "
            f"known: {', '.join(CHECKS)}"
        )

    report = SanitizeReport(
        experiment=target, control=CONTROL, pool=pool_fingerprint()
    )
    with tempfile.TemporaryDirectory(prefix="sanitize-") as temporary:
        base = Path(workdir) if workdir is not None else Path(temporary)
        base.mkdir(parents=True, exist_ok=True)
        control_snapshot = capture_subprocess(
            target,
            CONTROL,
            base / "control.json",
            trials=trials,
            seed=seed,
            fast=fast,
        )
        for name in checks:
            perturbed = _perturbed_conditions(name, jobs)
            if perturbed.backend == "vector-replay" and not numpy_available():
                report.checks.append(
                    CheckResult(
                        name=name,
                        perturbed=perturbed,
                        skipped="numpy unavailable: vector-replay cannot run",
                    )
                )
                continue
            snapshot = capture_subprocess(
                target,
                perturbed,
                base / f"{name}.json",
                trials=trials,
                seed=seed,
                fast=fast,
            )
            report.checks.append(
                CheckResult(
                    name=name,
                    perturbed=perturbed,
                    divergence=diff_captures(control_snapshot, snapshot),
                )
            )
    return report


# ----------------------------------------------------------------------
# CLI plumbing (dispatched from ``repro sanitize``)
# ----------------------------------------------------------------------


def add_arguments(parser: Any) -> None:
    """Attach the ``sanitize`` subcommand's arguments to *parser*."""
    import argparse

    parser.add_argument(
        "experiment",
        help="experiment id (e.g. E01) or MODULE:FUNC entry point",
    )
    parser.add_argument("--trials", type=int, default=None, help="trials per row")
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--fast", action="store_true", help="shrunken sweeps (CI-sized)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker count for the jobs perturbation (default: 2)",
    )
    parser.add_argument(
        "--checks",
        default=",".join(CHECKS),
        metavar="LIST",
        help=f"comma-separated checks to run (default: {','.join(CHECKS)})",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the JSON divergence report to FILE",
    )
    parser.add_argument(
        "--workdir",
        default=None,
        metavar="DIR",
        help="keep capture snapshots in DIR instead of a temp directory",
    )
    # Internal: a capture child writes its snapshot and exits.  The
    # parent pins PYTHONHASHSEED in the child's environment.
    parser.add_argument("--capture", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--backend", default="exact", help=argparse.SUPPRESS)


def dispatch(args: Any) -> int:
    """Run the ``sanitize`` subcommand from parsed CLI *args*."""
    if args.capture is not None:
        snapshot = run_capture(
            args.experiment,
            trials=args.trials,
            seed=args.seed,
            fast=args.fast,
            jobs=args.jobs if args.jobs >= 1 else 1,
            backend=args.backend,
        )
        Path(args.capture).write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return 0
    checks = [part.strip() for part in args.checks.split(",") if part.strip()]
    try:
        report = sanitize(
            args.experiment,
            trials=args.trials,
            seed=args.seed,
            fast=args.fast,
            jobs=args.jobs,
            checks=checks,
            workdir=args.workdir,
        )
    except (SanitizeError, ValueError, KeyError, ImportError, AttributeError) as error:
        print(f"repro sanitize: {error}", file=sys.stderr)
        return 2
    print(report.render())
    if args.report is not None:
        Path(args.report).write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.report}")
    return report.exit_code
