"""The decay-backoff substrate validating the paper's collision abstraction
(footnote 4): one message succeeds w.h.p. within O(log^2 n) micro-slots."""

from repro.backoff.decay import (
    DecayResult,
    DecaySchedule,
    resolve_contention,
    success_probability_curve,
)

__all__ = [
    "DecayResult",
    "DecaySchedule",
    "resolve_contention",
    "success_probability_curve",
]
