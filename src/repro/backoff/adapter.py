"""The collision-layer adapter: abstract slots expanded into decay windows.

The paper's protocols assume the single-winner collision model; its
footnote 4 claims that model is implementable by decay backoff at
poly-log cost.  :mod:`repro.backoff.decay` validates the claim for one
channel in isolation (experiment E16); this module validates it **in
composition**: a :class:`DecayExpandedCollision` model resolves every
contended channel by actually *running* decay backoff with destructive
physics inside a fixed window of ``W = Theta(log^2 n)`` micro-slots.

Semantics per abstract slot, per channel:

- contenders run the decay schedule; the first solo transmitter wins;
- the winner's message is delivered to every listener and failed
  contender (they heard it and aborted), and the winner learns it
  succeeded (nobody else transmitted after it — footnote 4's argument);
- if no solo transmission happens within the window (rare at the
  calibrated budget), the slot delivers nothing: listeners hear
  silence, all contenders fail *without* receiving a message.  The
  upper protocol experiences this as a lost slot, which COGCAST
  tolerates by construction.

Because all channels expand into the same fixed window, total physical
time is ``abstract_slots * W`` micro-slots — the accounting
experiment E23 reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.backoff.decay import DecaySchedule
from repro.sim.actions import Envelope
from repro.sim.collision import CollisionModel, Resolution


@dataclass
class BackoffStats:
    """Accounting for one run under the expanded model."""

    window: int
    resolutions: int = 0
    contended_resolutions: int = 0
    failed_windows: int = 0
    micro_slots_to_win: list[int] = field(default_factory=list)

    @property
    def failure_rate(self) -> float:
        if not self.resolutions:
            return 0.0
        return self.failed_windows / self.resolutions


class DecayExpandedCollision(CollisionModel):
    """Resolve contention by simulating decay backoff per channel.

    Parameters
    ----------
    n_max:
        Upper bound on contenders (the network's ``n``); sets the decay
        sweep length.
    window:
        Micro-slots per abstract slot.  Defaults to
        ``4 * sweep_length^2``, the E16-calibrated w.h.p. budget.
    """

    def __init__(self, n_max: int, *, window: int | None = None) -> None:
        self.schedule = DecaySchedule(n_max)
        self.window = (
            window
            if window is not None
            else 4 * self.schedule.sweep_length * self.schedule.sweep_length
        )
        self.stats = BackoffStats(window=self.window)

    def resolve(self, broadcasts: Sequence[Envelope], rng: random.Random) -> Resolution:
        if not broadcasts:
            return Resolution(winner=None)
        self.stats.resolutions += 1
        if len(broadcasts) == 1:
            # A lone transmitter needs no backoff: its first probability-1
            # micro-slot is solo by definition.
            self.stats.micro_slots_to_win.append(1)
            return Resolution(winner=broadcasts[0])
        self.stats.contended_resolutions += 1
        active = list(broadcasts)
        for micro_slot in range(self.window):
            p = self.schedule.probability(micro_slot)
            transmitters = [env for env in active if rng.random() < p]
            if len(transmitters) == 1:
                self.stats.micro_slots_to_win.append(micro_slot + 1)
                return Resolution(winner=transmitters[0])
        self.stats.failed_windows += 1
        return Resolution(winner=None)
