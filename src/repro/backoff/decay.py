"""Decay backoff: the substrate behind the collision abstraction.

The paper's collision model ("one message succeeds, everyone learns the
winner") is justified in footnote 4: *"broadcasting with exponentially
decreasing probabilities will ensure a message succeeds with high
probability within O(log^2 n) rounds.  Whenever a message succeeds,
everyone else receives it and aborts.  The only node that does not
abort is the node that succeeded, and hence it knows that it
succeeded."*

This module implements that claim on a single physical channel with the
harsher destructive-collision physics (two or more simultaneous
transmissions yield noise), and measures how many micro-slots the
abstraction costs — experiment E16 validates the ``O(log^2 n)`` bound.

The schedule is the classic DECAY pattern: the transmit probability
sweeps ``1, 1/2, 1/4, ..., 1/2^ceil(lg n_max)`` and repeats.  Whatever
the (unknown) contender count ``m <= n_max``, each sweep contains a slot
whose probability is within a factor 2 of ``1/m``, where a sole
transmitter emerges with constant probability; ``O(lg n)`` sweeps of
``O(lg n)`` slots then succeed w.h.p.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence


class DecaySchedule:
    """The cyclic transmit-probability schedule ``1, 1/2, ..., 2^-L``.

    ``L = ceil(lg n_max)`` where ``n_max`` upper-bounds the number of
    contenders (in the paper's setting, ``n``).
    """

    def __init__(self, n_max: int) -> None:
        if n_max < 1:
            raise ValueError("n_max must be positive")
        self.n_max = n_max
        self.sweep_length = max(1, math.ceil(math.log2(n_max))) + 1

    def probability(self, micro_slot: int) -> float:
        """Transmit probability in the given micro-slot (0-based)."""
        position = micro_slot % self.sweep_length
        return 2.0 ** (-position)


@dataclass(frozen=True, slots=True)
class DecayResult:
    """Outcome of one contention resolution.

    Attributes
    ----------
    micro_slots: slots consumed until the first solo transmission (the
        success), or the budget when none occurred.
    winner: index of the contender whose message got through, or ``None``.
    succeeded: whether some message got through within the budget.
    """

    micro_slots: int
    winner: int | None
    succeeded: bool


def resolve_contention(
    contenders: int,
    rng: random.Random,
    *,
    n_max: int | None = None,
    max_micro_slots: int | None = None,
) -> DecayResult:
    """Run decay backoff among *contenders* nodes on one channel.

    Physics per micro-slot: each still-active contender transmits
    independently with the schedule's probability.  Exactly one
    transmitter → success: all listeners (including the other
    contenders) hear it and abort, and the transmitter — having heard
    no abort-triggering message while everyone else went silent — knows
    it won.  Zero or several transmitters → noise, continue.

    Returns after the first success or after *max_micro_slots*
    (default: ``8 * sweep_length^2``, comfortably above the w.h.p.
    bound for the experiment ranges).
    """
    if contenders < 1:
        raise ValueError("need at least one contender")
    schedule = DecaySchedule(n_max if n_max is not None else contenders)
    budget = (
        max_micro_slots
        if max_micro_slots is not None
        else 8 * schedule.sweep_length * schedule.sweep_length
    )
    for micro_slot in range(budget):
        p = schedule.probability(micro_slot)
        transmitters = [
            index for index in range(contenders) if rng.random() < p
        ]
        if len(transmitters) == 1:
            return DecayResult(
                micro_slots=micro_slot + 1,
                winner=transmitters[0],
                succeeded=True,
            )
    return DecayResult(micro_slots=budget, winner=None, succeeded=False)


def success_probability_curve(
    contenders: int,
    budgets: Sequence[int],
    rng: random.Random,
    *,
    trials: int = 200,
    n_max: int | None = None,
) -> list[float]:
    """Empirical P(success within budget) for each budget in *budgets*.

    One batch of *trials* resolutions is run to the largest budget and
    reused across thresholds, so the curve is monotone by construction.
    """
    if not budgets:
        return []
    largest = max(budgets)
    finish_times: list[int | None] = []
    for _ in range(trials):
        result = resolve_contention(
            contenders, rng, n_max=n_max, max_micro_slots=largest
        )
        finish_times.append(result.micro_slots if result.succeeded else None)
    return [
        sum(1 for t in finish_times if t is not None and t <= budget) / trials
        for budget in budgets
    ]
