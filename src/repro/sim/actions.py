"""Per-slot actions and observations exchanged between protocols and the engine.

The information flow in one synchronous slot is:

1. The engine asks every live protocol for an :class:`Action` — one of
   :class:`Broadcast`, :class:`Listen`, or :class:`Idle`.  Channels are
   referenced by **local label** (an index into the node's own channel
   set); protocols never see physical channel identifiers.
2. The engine resolves contention per physical channel (see
   :mod:`repro.sim.collision`) and hands each protocol a
   :class:`SlotOutcome` describing what that node observed.

The outcome encodes the paper's model faithfully (Section 2):

- a listener on a channel where exactly one message wins receives it;
- when multiple nodes broadcast, one message (uniform among broadcasters
  under the default model) is received by *all* listeners;
- every broadcaster learns whether it succeeded, and a failed
  broadcaster additionally receives the message that won.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.types import LocalLabel, NodeId


@dataclass(frozen=True, slots=True)
class Envelope:
    """A message in flight: sender identity plus opaque payload.

    Real radios put the sender id inside the frame; modelling it as an
    explicit field saves every protocol from re-encoding it.  ``payload``
    is treated as opaque by the engine.
    """

    sender: NodeId
    payload: Any


@dataclass(frozen=True, slots=True)
class Broadcast:
    """Broadcast *payload* on the node's local channel *label* this slot."""

    label: LocalLabel
    payload: Any


@dataclass(frozen=True, slots=True)
class Listen:
    """Listen on the node's local channel *label* this slot."""

    label: LocalLabel


@dataclass(frozen=True, slots=True)
class Idle:
    """Do nothing this slot (radio off).

    Not used by the paper's algorithms — every node participates every
    slot — but needed for terminated COGCOMP nodes and for adversarial
    or baseline schedules.
    """


Action = Broadcast | Listen | Idle


@dataclass(frozen=True, slots=True)
class SlotOutcome:
    """What one node observed at the end of one slot.

    Attributes
    ----------
    slot:
        The slot index this outcome belongs to.
    action:
        The action this node took (echoed back for convenience).
    received:
        The envelope delivered to this node, if any.  For a listener this
        is the winning message on its channel (or ``None`` for silence).
        For a failed broadcaster this is the message that beat it.  For a
        successful broadcaster it is ``None``.
    success:
        For broadcasters: whether this node's message won the channel.
        ``None`` for listeners and idle nodes.
    jammed:
        True when an adversary jammed this node's channel this slot: the
        node observes noise — a listener receives nothing, a broadcaster
        is told it failed and receives nothing.
    extra_received:
        Under the *stronger* collision model used elsewhere in the CRN
        literature (paper footnote 3), every concurrent message is
        delivered; the additional ones beyond ``received`` appear here.
        Empty under the paper's default model.
    """

    slot: int
    action: Action
    received: Optional[Envelope] = None
    success: Optional[bool] = None
    jammed: bool = False
    extra_received: tuple[Envelope, ...] = field(default=())

    @property
    def heard_silence(self) -> bool:
        """True when the node listened and received nothing."""
        return isinstance(self.action, Listen) and self.received is None and not self.jammed
