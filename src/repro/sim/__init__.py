"""Slot-synchronous cognitive radio network simulator.

This package implements the paper's model (Section 2): synchronous
slots, per-node channel sets with local labels, guaranteed pairwise
overlap, and the single-winner collision abstraction.  It also hosts the
extensions the paper discusses: dynamic per-slot assignments and
n-uniform jamming adversaries.
"""

from repro.sim.actions import (
    Action,
    Broadcast,
    Envelope,
    Idle,
    Listen,
    SlotOutcome,
)
from repro.sim.adversary import (
    Jammer,
    NullJammer,
    RandomJammer,
    SweepJammer,
    TargetedJammer,
)
from repro.sim.channels import (
    AssignmentSchedule,
    ChannelAssignment,
    DynamicSchedule,
    Network,
    StaticSchedule,
)
from repro.sim.collision import (
    AllDeliveredCollision,
    CollisionModel,
    DestructiveCollision,
    Resolution,
    SingleWinnerCollision,
)
from repro.sim.engine import Engine, RunResult, build_engine, make_views
from repro.sim.faults import (
    CrashFault,
    Fault,
    FaultyProtocol,
    OutageFault,
    with_faults,
)
from repro.sim.metrics import (
    TraceMetrics,
    channel_utilization,
    compute_metrics,
    informed_curve,
)
from repro.sim.persistence import load_trace, save_trace
from repro.sim.protocol import IdleProtocol, NodeView, Protocol
from repro.sim.rng import derive_rng, derive_seed, spawn_rngs
from repro.sim.trace import ChannelEvent, EventTrace
from repro.sim.wrappers import BoundedProtocol, DelayedStartProtocol

__all__ = [
    "Action",
    "AllDeliveredCollision",
    "AssignmentSchedule",
    "BoundedProtocol",
    "Broadcast",
    "DelayedStartProtocol",
    "ChannelAssignment",
    "ChannelEvent",
    "CollisionModel",
    "CrashFault",
    "Fault",
    "FaultyProtocol",
    "OutageFault",
    "TraceMetrics",
    "channel_utilization",
    "compute_metrics",
    "informed_curve",
    "load_trace",
    "save_trace",
    "with_faults",
    "DestructiveCollision",
    "DynamicSchedule",
    "Engine",
    "Envelope",
    "EventTrace",
    "Idle",
    "IdleProtocol",
    "Jammer",
    "Listen",
    "Network",
    "NodeView",
    "NullJammer",
    "Protocol",
    "RandomJammer",
    "Resolution",
    "RunResult",
    "SingleWinnerCollision",
    "SlotOutcome",
    "StaticSchedule",
    "SweepJammer",
    "TargetedJammer",
    "build_engine",
    "derive_rng",
    "derive_seed",
    "make_views",
    "spawn_rngs",
]
