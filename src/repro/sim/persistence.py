"""Trace persistence: save and reload :class:`EventTrace` as JSON lines.

Debugging a distributed protocol usually means staring at what actually
went over the air.  These helpers serialize a trace to a stable JSONL
format (one channel-event per line) so a failing run can be captured
once and inspected — or diffed against another run — offline.

Payload encoding: the library's message dataclasses
(:mod:`repro.core.messages`) and JSON primitives round-trip exactly;
any other payload is stored as its ``repr`` under an ``"opaque"``
marker (readable, not reloadable as the original object).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

# Import the messages module directly (not via the repro.core package
# __init__) to keep the sim <-> core import graph acyclic.
import repro.core.messages as messages
from repro.sim.actions import Envelope
from repro.sim.trace import ChannelEvent, EventTrace

_MESSAGE_TYPES = {
    cls.__name__: cls
    for cls in (
        messages.InitPayload,
        messages.CountPayload,
        messages.ClusterSizePayload,
        messages.MediatorAnnouncePayload,
        messages.ValueReportPayload,
        messages.AckPayload,
    )
}


def _encode_payload(payload: Any) -> Any:
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return {"kind": "literal", "value": payload}
    if type(payload).__name__ in _MESSAGE_TYPES and dataclasses.is_dataclass(payload):
        return {
            "kind": "message",
            "type": type(payload).__name__,
            "fields": _encode_fields(dataclasses.asdict(payload)),
        }
    return {"kind": "opaque", "repr": repr(payload)}


def _encode_fields(fields: dict[str, Any]) -> dict[str, Any]:
    encoded = {}
    for name, value in fields.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            encoded[name] = value
        else:
            encoded[name] = repr(value)
    return encoded


def _decode_payload(data: Any) -> Any:
    kind = data.get("kind")
    if kind == "literal":
        return data["value"]
    if kind == "message":
        cls = _MESSAGE_TYPES[data["type"]]
        return cls(**data["fields"])
    return OpaquePayload(data.get("repr", "<unknown>"))


@dataclasses.dataclass(frozen=True, slots=True)
class OpaquePayload:
    """Placeholder for a payload that could not be reconstructed."""

    text: str


def event_to_dict(event: ChannelEvent) -> dict[str, Any]:
    """One channel event as a JSON-ready dictionary."""
    return {
        "slot": event.slot,
        "channel": event.channel,
        "broadcasters": list(event.broadcasters),
        "listeners": list(event.listeners),
        "jammed": sorted(event.jammed_nodes),
        "winner": (
            None
            if event.winner is None
            else {
                "sender": event.winner.sender,
                "payload": _encode_payload(event.winner.payload),
            }
        ),
    }


def event_from_dict(data: dict[str, Any]) -> ChannelEvent:
    """Inverse of :func:`event_to_dict`."""
    winner = None
    if data.get("winner") is not None:
        winner = Envelope(
            sender=data["winner"]["sender"],
            payload=_decode_payload(data["winner"]["payload"]),
        )
    return ChannelEvent(
        slot=data["slot"],
        channel=data["channel"],
        broadcasters=tuple(data["broadcasters"]),
        listeners=tuple(data["listeners"]),
        winner=winner,
        jammed_nodes=frozenset(data.get("jammed", ())),
    )


def save_trace(trace: EventTrace, path: str | Path) -> int:
    """Write the trace as JSON lines; returns the event count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in trace:
            handle.write(json.dumps(event_to_dict(event)) + "\n")
            count += 1
    return count


def load_trace(path: str | Path) -> EventTrace:
    """Read a JSONL trace written by :func:`save_trace`."""
    trace = EventTrace()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            trace.record(event_from_dict(json.loads(line)))
    return trace
