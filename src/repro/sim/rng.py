"""Deterministic random-stream management.

Every stochastic component in the library (each node's protocol, the
collision model, assignment generators, adversaries, game referees)
draws from its own :class:`random.Random` stream, derived from a single
root seed.  This makes every experiment row exactly reproducible while
keeping the streams statistically independent of one another: reordering
the slot loop or adding a new consumer never perturbs existing streams.

The derivation is a stable hash of ``(root_seed, *scope)`` where *scope*
is any tuple of strings/ints naming the consumer, e.g.
``("node", 17)`` or ``("collision",)``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable


def derive_seed(root_seed: int, *scope: object) -> int:
    """Derive a stable 64-bit seed for a named consumer.

    Uses BLAKE2b over the textual representation of the root seed and
    scope path.  Python's ``hash()`` is salted per process, so it must
    not be used here.

    >>> derive_seed(0, "node", 1) == derive_seed(0, "node", 1)
    True
    >>> derive_seed(0, "node", 1) != derive_seed(0, "node", 2)
    True
    """
    text = repr((root_seed,) + scope).encode("utf-8")
    digest = hashlib.blake2b(text, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def derive_rng(root_seed: int, *scope: object) -> random.Random:
    """Return a fresh :class:`random.Random` seeded for *scope*."""
    return random.Random(derive_seed(root_seed, *scope))


def spawn_rngs(root_seed: int, prefix: str, count: int) -> list[random.Random]:
    """Return *count* independent RNGs named ``(prefix, 0..count-1)``.

    Convenience for giving each of ``n`` nodes its own stream.
    """
    return [derive_rng(root_seed, prefix, index) for index in range(count)]


def sample_distinct(rng: random.Random, population: Iterable[int], count: int) -> list[int]:
    """Sample *count* distinct items from *population* using *rng*.

    Materializes the population once; intended for moderate sizes (the
    channel universes used in experiments).
    """
    items = list(population)
    return rng.sample(items, count)
