"""Trace analytics: run-level metrics derived from an :class:`EventTrace`.

Experiments mostly report completion times; these helpers answer the
*why* questions — how contended were the channels, how much of the
spectrum did the protocol actually use, how often did collisions burn a
slot — without touching protocol internals.  Everything here is
analysis-side: algorithms never see these numbers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.sim.trace import EventTrace
from repro.types import Channel, Slot


@dataclass(frozen=True, slots=True)
class TraceMetrics:
    """Aggregate statistics over one traced execution.

    Attributes
    ----------
    slots_observed: distinct slots with at least one recorded event.
    transmissions: total broadcast attempts (jammed ones included).
    successes: channel-slots where some message won.
    collisions: channel-slots with two or more contenders, whether or
        not a message got through ("collision" means contention
        occurred; under the paper's single-winner model one contender
        still wins, but jammed or destructive-model slots may not
        deliver at all).
    undelivered_contended: the subset of ``collisions`` channel-slots
        in which *no* message won (all contenders jammed, or a
        destructive collision model) — the denominator correction for
        :attr:`collision_rate`.
    wasted_listens: listener-slots that received nothing.
    deliveries: listener-slots that received a message.
    distinct_channels_used: physical channels touched at least once.
    peak_channel_contention: the largest broadcaster count observed on
        any single channel in any slot.
    """

    slots_observed: int
    transmissions: int
    successes: int
    collisions: int
    wasted_listens: int
    deliveries: int
    distinct_channels_used: int
    peak_channel_contention: int
    undelivered_contended: int = 0

    @property
    def collision_rate(self) -> float:
        """Fraction of active channel-slots with contention.

        Active channel-slots are those where a transmission could have
        been heard: the successful ones plus the contended ones nothing
        survived (jammed / destructive).  Dividing by successes alone —
        the historical behaviour — reported a 0 rate for runs whose
        every contended slot was jammed.
        """
        active = self.successes + self.undelivered_contended
        return self.collisions / active if active else 0.0

    @property
    def delivery_efficiency(self) -> float:
        """Deliveries per listener-slot (how often listening paid off)."""
        total = self.deliveries + self.wasted_listens
        return self.deliveries / total if total else 0.0


def compute_metrics(trace: EventTrace) -> TraceMetrics:
    """Fold a trace into :class:`TraceMetrics` (single pass)."""
    slots: set[Slot] = set()
    channels: set[Channel] = set()
    transmissions = 0
    successes = 0
    collisions = 0
    undelivered_contended = 0
    wasted_listens = 0
    deliveries = 0
    peak = 0
    for event in trace:
        slots.add(event.slot)
        channels.add(event.channel)
        contenders = len(event.broadcasters)
        transmissions += contenders
        peak = max(peak, contenders)
        if event.winner is not None:
            successes += 1
        if contenders >= 2:
            collisions += 1
            if event.winner is None:
                undelivered_contended += 1
        live_listeners = [
            node for node in event.listeners if node not in event.jammed_nodes
        ]
        if event.winner is not None:
            deliveries += len(live_listeners)
        else:
            wasted_listens += len(live_listeners)
        wasted_listens += len(event.listeners) - len(live_listeners)
    return TraceMetrics(
        slots_observed=len(slots),
        transmissions=transmissions,
        successes=successes,
        collisions=collisions,
        undelivered_contended=undelivered_contended,
        wasted_listens=wasted_listens,
        deliveries=deliveries,
        distinct_channels_used=len(channels),
        peak_channel_contention=peak,
    )


def channel_utilization(trace: EventTrace) -> Counter[Channel]:
    """How many slots each physical channel carried a successful message."""
    used: Counter[Channel] = Counter()
    for event in trace:
        if event.winner is not None:
            used[event.channel] += 1
    return used


def informed_curve(trace: EventTrace, root: int, num_nodes: int) -> list[tuple[Slot, int]]:
    """The epidemic growth curve: (slot, cumulative informed count).

    Counts first deliveries of :class:`~repro.core.messages.InitPayload`
    per node, starting from the root.  Returns one point per slot in
    which at least one node was newly informed.
    """
    from repro.core.messages import InitPayload

    informed: set[int] = {root}
    curve: list[tuple[Slot, int]] = []
    for event in trace:
        if event.winner is None or not isinstance(event.winner.payload, InitPayload):
            continue
        fresh = [
            node
            for node in event.listeners
            if node not in informed and node not in event.jammed_nodes
        ]
        if not fresh:
            continue
        informed.update(fresh)
        if curve and curve[-1][0] == event.slot:
            curve[-1] = (event.slot, len(informed))
        else:
            curve.append((event.slot, len(informed)))
    return curve
