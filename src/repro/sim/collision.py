"""Collision/contention models for concurrent broadcasts on one channel.

The paper's model (Section 2): when multiple nodes broadcast on one
channel in one slot, **one message, chosen uniformly at random, is
received by all listeners on the channel**; each broadcaster learns
whether it succeeded, and failed broadcasters receive the winning
message.  The paper notes (footnote 4) that this abstraction is
implementable by standard backoff at poly-log cost — our
:mod:`repro.backoff` package demonstrates that claim.

Footnote 3 notes that the broader CRN literature often assumes an even
*stronger* model where all concurrent messages are delivered; we provide
it as :class:`AllDeliveredCollision` for ablation experiments.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Sequence

from repro.sim.actions import Envelope


@dataclass(frozen=True, slots=True)
class Resolution:
    """The outcome of contention on one channel in one slot.

    Attributes
    ----------
    winner:
        The envelope every listener (and failed broadcaster) receives,
        or ``None`` when nothing was transmitted.
    extras:
        Additional envelopes delivered to listeners (non-empty only
        under the stronger all-delivered model).
    """

    winner: Envelope | None
    extras: tuple[Envelope, ...] = ()


class CollisionModel(abc.ABC):
    """Resolves concurrent broadcasts on a single channel."""

    @abc.abstractmethod
    def resolve(self, broadcasts: Sequence[Envelope], rng: random.Random) -> Resolution:
        """Given the envelopes broadcast on one channel, pick what is heard."""


class SingleWinnerCollision(CollisionModel):
    """The paper's default model: one uniformly random message succeeds."""

    def resolve(self, broadcasts: Sequence[Envelope], rng: random.Random) -> Resolution:
        if not broadcasts:
            return Resolution(winner=None)
        if len(broadcasts) == 1:
            return Resolution(winner=broadcasts[0])
        return Resolution(winner=rng.choice(list(broadcasts)))


class AllDeliveredCollision(CollisionModel):
    """The stronger CRN-community model (paper footnote 3).

    Every concurrent message is delivered.  We still designate a uniform
    "winner" so that protocols written against the default model (which
    key success off winning) behave sensibly; the remaining messages are
    exposed via :attr:`Resolution.extras`.
    """

    def resolve(self, broadcasts: Sequence[Envelope], rng: random.Random) -> Resolution:
        if not broadcasts:
            return Resolution(winner=None)
        envelopes = list(broadcasts)
        winner = rng.choice(envelopes)
        extras = tuple(env for env in envelopes if env is not winner)
        return Resolution(winner=winner, extras=extras)


class DestructiveCollision(CollisionModel):
    """A harsher model: two or more concurrent broadcasts destroy each other.

    Not used by the paper, but useful to demonstrate *why* the paper
    assumes lower-layer contention resolution: COGCOMP's counting phases
    rely on some message always getting through.  Under this model a
    collision delivers nothing and every broadcaster fails.
    """

    def resolve(self, broadcasts: Sequence[Envelope], rng: random.Random) -> Resolution:
        if len(broadcasts) == 1:
            return Resolution(winner=broadcasts[0])
        return Resolution(winner=None)


class ProbedCollision(CollisionModel):
    """Wraps another model, reporting every resolution to an observer.

    The observer's ``on_contention(contenders, resolution)`` hook fires
    after each :meth:`resolve` with the contender count and the inner
    model's :class:`Resolution`.  Duck-typed (any object with the hook
    works) so this module never imports :mod:`repro.obs`; attach via
    :func:`repro.obs.probe.attach` rather than constructing directly.
    """

    def __init__(self, inner: CollisionModel, observer: object) -> None:
        self.inner = inner
        self.observer = observer

    def resolve(self, broadcasts: Sequence[Envelope], rng: random.Random) -> Resolution:
        """Delegate to the inner model, then report to the observer."""
        resolution = self.inner.resolve(broadcasts, rng)
        self.observer.on_contention(len(broadcasts), resolution)
        return resolution
