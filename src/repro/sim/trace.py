"""Execution traces: an engine-level record of what happened each slot.

Protocols keep whatever private logs they need (COGCOMP's phases depend
on per-node logs); the :class:`EventTrace` here is *analysis-side*
ground truth, used by tests and experiments to verify protocol-side
bookkeeping against what physically happened — e.g. rebuilding the
distribution tree from the trace and comparing it to the tree COGCAST
participants believe they are part of.

Recording every slot of a long run can be memory-heavy, so tracing is
opt-in on the engine and the trace can be bounded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, MutableSequence

from repro.sim.actions import Envelope
from repro.types import Channel, NodeId, Slot


@dataclass(frozen=True, slots=True)
class ChannelEvent:
    """Everything that happened on one physical channel in one slot.

    Attributes
    ----------
    slot: the slot index.
    channel: the physical channel.
    broadcasters: node ids that broadcast on the channel.
    listeners: node ids that listened on the channel.
    winner: the envelope that was heard, if any.
    jammed_nodes: subset of participants whose view of this channel was
        jammed by an adversary this slot.
    """

    slot: Slot
    channel: Channel
    broadcasters: tuple[NodeId, ...]
    listeners: tuple[NodeId, ...]
    winner: Envelope | None
    jammed_nodes: frozenset[NodeId] = frozenset()

    @property
    def delivered(self) -> bool:
        """Whether any listener actually received a message."""
        return self.winner is not None and any(
            node not in self.jammed_nodes for node in self.listeners
        )


@dataclass
class EventTrace:
    """An append-only log of :class:`ChannelEvent` records.

    Parameters
    ----------
    max_slots:
        If set, events from slots beyond this bound are dropped (the
        engine keeps running; only the record is truncated).  Keeps the
        *head* of the run.
    max_events:
        If set, the trace holds at most this many events, discarding
        the oldest as new ones arrive (ring-buffer semantics, O(1) per
        record).  Keeps the *tail* of the run — the right bound for
        "capture the end of a long run that misbehaved".  Composable
        with ``max_slots``.
    """

    max_slots: int | None = None
    max_events: int | None = None
    events: MutableSequence[ChannelEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.max_events is not None:
            if self.max_events < 1:
                raise ValueError("max_events must be positive")
            self.events = deque(self.events, maxlen=self.max_events)

    def record(self, event: ChannelEvent) -> None:
        if self.max_slots is not None and event.slot >= self.max_slots:
            return
        self.events.append(event)

    def __iter__(self) -> Iterator[ChannelEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def slots(self) -> set[Slot]:
        return {event.slot for event in self.events}

    def events_in_slot(self, slot: Slot) -> list[ChannelEvent]:
        return [event for event in self.events if event.slot == slot]

    def deliveries(self) -> Iterator[ChannelEvent]:
        """Events in which at least one listener received a message."""
        return (event for event in self.events if event.delivered)

    def first_delivery_to(self, node: NodeId) -> ChannelEvent | None:
        """The first event in which *node*, as a listener, received a message."""
        for event in self.events:
            if (
                event.winner is not None
                and node in event.listeners
                and node not in event.jammed_nodes
            ):
                return event
        return None
