"""Fault injection: crash-stop and transient-outage wrappers.

The paper motivates COGCAST's stateless design with robustness:
*"because nodes do the same thing in every slot, it can gracefully
handle changes to the network conditions, temporary faults, and so on"*
(Section 1).  This module makes that claim testable:

- :class:`CrashFault` — the node dies at a given slot and never acts
  again (crash-stop).
- :class:`OutageFault` — the node's radio is off during given slot
  intervals (sleeps through them, then resumes).  The wrapped protocol
  still observes every slot — it just sees itself idle during outages —
  so slot-indexed protocols (COGCOMP's phases) stay aligned.

Faults wrap a protocol: ``FaultyProtocol(inner, faults)``.  The wrapper
composes with any protocol and any engine feature (jamming, tracing,
dynamic schedules).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.sim.actions import Action, Idle, SlotOutcome
from repro.sim.protocol import Protocol
from repro.types import Slot


class Fault(abc.ABC):
    """Decides, per slot, whether the node is incapacitated."""

    @abc.abstractmethod
    def active(self, slot: Slot) -> bool:
        """True when the fault suppresses the node during *slot*."""

    @property
    def permanent_from(self) -> Slot | None:
        """First slot of a permanent fault, or ``None`` for transient ones."""
        return None


@dataclass(frozen=True, slots=True)
class CrashFault(Fault):
    """Crash-stop at ``crash_slot``: the node never acts again."""

    crash_slot: Slot

    def active(self, slot: Slot) -> bool:
        return slot >= self.crash_slot

    @property
    def permanent_from(self) -> Slot | None:
        return self.crash_slot


@dataclass(frozen=True, slots=True)
class OutageFault(Fault):
    """Radio off during each half-open ``[start, end)`` interval."""

    intervals: tuple[tuple[Slot, Slot], ...]

    def __post_init__(self) -> None:
        for start, end in self.intervals:
            if end <= start:
                raise ValueError(f"empty outage interval [{start}, {end})")

    def active(self, slot: Slot) -> bool:
        return any(start <= slot < end for start, end in self.intervals)


class FaultyProtocol(Protocol):
    """Wraps *inner*, suppressing it whenever any fault is active.

    During a faulty slot the node idles; the inner protocol is fed a
    synthesized idle outcome so its slot counter (if any) stays in sync.
    After a :class:`CrashFault` fires, the wrapper reports ``done`` so
    the engine stops scheduling the node entirely.
    """

    def __init__(self, inner: Protocol, faults: Sequence[Fault]) -> None:
        self.inner = inner
        self.faults = list(faults)
        self._crashed = False

    def _fault_active(self, slot: Slot) -> bool:
        active = False
        for fault in self.faults:
            if fault.active(slot):
                active = True
                if fault.permanent_from is not None:
                    self._crashed = True
        return active

    def begin_slot(self, slot: int) -> Action:
        if self._fault_active(slot):
            self._suppressed = True
            return Idle()
        self._suppressed = False
        return self.inner.begin_slot(slot)

    def end_slot(self, slot: int, outcome: SlotOutcome) -> None:
        if getattr(self, "_suppressed", False):
            self.inner.end_slot(slot, SlotOutcome(slot=slot, action=Idle()))
            return
        self.inner.end_slot(slot, outcome)

    @property
    def done(self) -> bool:
        return self._crashed or self.inner.done


def with_faults(
    protocols: Sequence[Protocol],
    fault_plan: dict[int, Sequence[Fault]],
) -> list[Protocol]:
    """Wrap the protocols named in *fault_plan*; pass others through.

    ``fault_plan[node]`` is the fault list for that node.
    """
    wrapped: list[Protocol] = []
    for node, protocol in enumerate(protocols):
        faults = fault_plan.get(node)
        wrapped.append(FaultyProtocol(protocol, faults) if faults else protocol)
    return wrapped
