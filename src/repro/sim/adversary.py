"""Jamming adversaries (the n-uniform jammer of Theorem 18).

An *x-uniform* jamming adversary partitions the nodes into ``x`` groups
and makes an independent jamming decision for each group each slot; the
*n-uniform* adversary (one group per node) can jam a different channel
set at every node.  Theorem 18 reduces jamming-resistant broadcast in a
multi-channel network to local broadcast in a *dynamic* cognitive radio
network: jamming ``k'`` channels at a node is the same as removing those
channels from the node's available set that slot, and two nodes each
missing at most ``k'`` of the same ``c`` channels still share at least
``c - 2k'`` channels.

The engine consumes a :class:`Jammer` by asking, each slot, which
physical channels are jammed *at each node*.  A jammed channel delivers
noise to that node: its listen hears nothing; its broadcast fails and is
heard by no one.
"""

from __future__ import annotations

import abc
import random
from typing import Mapping, Sequence

from repro.types import Channel, NodeId, Slot


class Jammer(abc.ABC):
    """Decides, per slot, the jammed channel set at each node."""

    @abc.abstractmethod
    def jammed(self, slot: Slot, num_nodes: int) -> Mapping[NodeId, frozenset[Channel]]:
        """Channels jammed at each node during *slot*.

        Nodes absent from the mapping are unjammed.  Implementations
        must be deterministic given their constructor RNG (the engine
        calls this exactly once per slot).
        """


class NullJammer(Jammer):
    """No jamming.  The engine default."""

    def jammed(self, slot: Slot, num_nodes: int) -> Mapping[NodeId, frozenset[Channel]]:
        return {}


class RandomJammer(Jammer):
    """Jams *budget* uniformly random channels per node per slot.

    This is the strongest pattern an n-uniform but *oblivious* jammer
    can mount against a memoryless algorithm like COGCAST: since the
    algorithm's channel choice is uniform and independent each slot,
    adaptivity buys the jammer nothing against it.
    """

    def __init__(self, universe: Sequence[Channel], budget: int, rng: random.Random) -> None:
        if budget > len(universe):
            raise ValueError("jamming budget exceeds channel universe")
        self.universe = list(universe)
        self.budget = budget
        self.rng = rng

    def jammed(self, slot: Slot, num_nodes: int) -> Mapping[NodeId, frozenset[Channel]]:
        return {
            node: frozenset(self.rng.sample(self.universe, self.budget))
            for node in range(num_nodes)
        }


class SweepJammer(Jammer):
    """Jams a contiguous window of *budget* channels, sliding one per slot.

    All nodes see the same window (a 1-uniform adversary): models a
    narrowband interferer sweeping the spectrum.
    """

    def __init__(self, universe: Sequence[Channel], budget: int) -> None:
        if budget > len(universe):
            raise ValueError("jamming budget exceeds channel universe")
        self.universe = sorted(universe)
        self.budget = budget

    def jammed(self, slot: Slot, num_nodes: int) -> Mapping[NodeId, frozenset[Channel]]:
        size = len(self.universe)
        start = slot % size
        window = frozenset(
            self.universe[(start + offset) % size] for offset in range(self.budget)
        )
        return {node: window for node in range(num_nodes)}


class TargetedJammer(Jammer):
    """Per-node jamming of a fixed channel subset (full n-uniform power).

    ``targets[u]`` is the channel set permanently jammed at node ``u``.
    Models an adversary that learned each node's most-used channels.
    """

    def __init__(self, targets: Mapping[NodeId, frozenset[Channel]]) -> None:
        self.targets = {node: frozenset(chans) for node, chans in targets.items()}

    def jammed(self, slot: Slot, num_nodes: int) -> Mapping[NodeId, frozenset[Channel]]:
        return self.targets
