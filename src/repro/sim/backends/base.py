"""The :class:`EngineBackend` contract and backend-selection state.

A *backend* is a strategy for executing a population of per-node
protocols over a :class:`~repro.sim.channels.Network`.  Every backend
builds an *engine-like* object with the same observable surface as
:class:`repro.sim.engine.Engine` — ``protocols``, ``network``, ``rng``,
``run(max_slots, stop_when=..., require_completion=...)`` returning a
:class:`~repro.sim.engine.RunResult`, ``all_done``, and
``fast_path_engaged`` — so the measurement harnesses in
:mod:`repro.core.runners` and :mod:`repro.baselines.runners` never
branch on which backend is active.

Two backends ship:

- :class:`~repro.sim.backends.exact.ExactBackend` — the reference
  per-node engine (the general kernel plus the PR-3 fast-path kernel),
  bit-identical to historical behavior.
- :class:`~repro.sim.backends.vector.VectorBackend` — a numpy columnar
  engine that represents the whole node population as arrays.  It
  engages only for configurations it can prove equivalent (see
  ``docs/performance.md`` "Backends") and otherwise falls back to the
  exact engine, so selecting it is always safe.

Selection flows through :func:`repro.sim.engine.build_engine`'s
``backend=`` parameter; ``None`` defers to the per-process default set
by :func:`set_default_backend` (the CLI's ``--backend`` flag), which
:func:`repro.perf.pmap_trials` propagates into worker processes.
"""

from __future__ import annotations

import abc
import importlib.util
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    ClassVar,
    Iterator,
    Mapping,
    Sequence,
)

from repro.types import SimulationError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.sim.adversary import Jammer
    from repro.sim.channels import Network
    from repro.sim.collision import CollisionModel
    from repro.sim.protocol import Protocol
    from repro.sim.trace import EventTrace


class BackendUnavailableError(SimulationError):
    """A backend was requested whose runtime requirements are missing."""


def numpy_available() -> bool:
    """Whether numpy can be imported (without importing it)."""
    return importlib.util.find_spec("numpy") is not None


class EngineBackend(abc.ABC):
    """Strategy interface: build an engine-like executor for one run.

    Backends are stateless factories; all per-run state lives in the
    engine object they build.  ``name`` is the registry key users spell
    in ``build_engine(backend=...)`` and ``--backend``.
    """

    name: ClassVar[str]

    @abc.abstractmethod
    def build(
        self,
        network: "Network",
        protocols: "Sequence[Protocol]",
        *,
        collision: "CollisionModel | None" = None,
        seed: int = 0,
        trace: "EventTrace | None" = None,
        jammer: "Jammer | None" = None,
        probe: Any = None,
        profiler: Any = None,
        fast_path: bool = True,
    ) -> Any:
        """Build the engine-like executor for *protocols* over *network*."""

    def unavailable_reason(self) -> str | None:
        """Why this backend cannot run here, or ``None`` if it can."""
        return None

    def available(self) -> bool:
        """Whether this backend's runtime requirements are met."""
        return self.unavailable_reason() is None


class AllInformed:
    """Stop condition: every protocol reports ``informed``.

    The broadcast runners' stop predicate, as a named object rather
    than a closure so backends can recognize it: the exact engine just
    calls it per slot, while the vector engine matches
    ``vector_condition`` and evaluates the same predicate as one
    boolean-array reduction instead of ``n`` attribute reads.
    """

    #: Columnar predicate tag recognized by the vector kernel.
    vector_condition = "all_informed"

    __slots__ = ("protocols",)

    def __init__(self, protocols: Sequence[Any]) -> None:
        self.protocols = protocols

    def __call__(self, engine: Any) -> bool:
        return all(protocol.informed for protocol in self.protocols)


@dataclass(frozen=True)
class VectorField:
    """One field of a columnar program's declared state contract.

    ``dtype`` names the column representation the kernel materializes
    (``"bool"``, ``"int64"``, or ``"object"`` for values that stay
    Python-side, like a live RNG handle); ``nullable`` marks fields
    whose per-node value may be ``None`` (unset parent, not-yet-informed
    slot).  Declared dtypes are deliberately wide — ``int64`` and
    ``bool`` are exact under any reduction order, which is what keeps
    replay mode bit-identical (lint rule R13 guards the float side).
    """

    name: str
    dtype: str
    nullable: bool = False


@dataclass(frozen=True)
class VectorContract:
    """The declared export/import field set for one ``vector_kind``.

    A protocol advertising *kind* must export at least these fields
    from ``vector_export()``; the kernel validates the first export
    against the contract and falls back to the exact engine (never
    crashes, never silently drops state) when fields are missing.
    Lint rule R11 checks the same property statically, and
    ``repro sanitize`` checks it dynamically — three layers, one
    contract.
    """

    kind: str
    fields: tuple[VectorField, ...]

    def field_names(self) -> frozenset[str]:
        return frozenset(field.name for field in self.fields)

    def missing_fields(self, export: Mapping[str, Any]) -> list[str]:
        """Contract fields absent from one protocol's export dict."""
        return sorted(self.field_names() - set(export))


#: Declared contracts, keyed by ``vector_kind``.  The epidemic
#: broadcast contract mirrors ``CogCast``'s exported state exactly:
#: integer/bool columns for everything the kernel advances, object
#: fields for the message payload and the live replay RNG handle.
VECTOR_CONTRACTS: dict[str, VectorContract] = {
    "epidemic-broadcast": VectorContract(
        kind="epidemic-broadcast",
        fields=(
            VectorField("informed", "bool"),
            VectorField("message", "object", nullable=True),
            VectorField("parent", "int64", nullable=True),
            VectorField("informed_slot", "int64", nullable=True),
            VectorField("informed_label", "int64", nullable=True),
            VectorField("current_label", "int64"),
            VectorField("keep_log", "bool"),
            VectorField("rng", "object"),
        ),
    ),
}


def vector_contract(kind: str) -> VectorContract | None:
    """The declared contract for *kind*, or ``None`` if undeclared."""
    return VECTOR_CONTRACTS.get(kind)


#: Per-process default backend name used when ``backend=None``.
_DEFAULT_BACKEND = "exact"


def set_default_backend(name: str | None) -> None:
    """Set the backend used when callers pass ``backend=None``.

    ``None`` resets to ``"exact"``.  The CLI's ``--backend`` flag calls
    this once at startup — mirroring ``set_default_jobs`` — so every
    runner and experiment in the process picks the selection up without
    threading a parameter through every ``run()`` signature.
    :func:`repro.perf.pmap_trials` snapshots the default into its
    worker processes, so parallel trial loops honor it too.
    """
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = "exact" if name is None else _check_backend_name(name)


def default_backend_name() -> str:
    """The current per-process default backend name."""
    return _DEFAULT_BACKEND


@contextmanager
def backend_scope(name: str | None) -> Iterator[None]:
    """Temporarily set the default backend (restored on exit).

    ``None`` is a no-op scope, so callers can pass an optional backend
    straight through: ``with backend_scope(backend): ...``.
    """
    if name is None:
        yield
        return
    previous = _DEFAULT_BACKEND
    set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(previous)


def _check_backend_name(name: str) -> str:
    """Validate a backend name against the registry (import-cycle-free)."""
    from repro.sim.backends import BACKEND_NAMES

    if name not in BACKEND_NAMES:
        known = ", ".join(sorted(BACKEND_NAMES))
        raise ValueError(f"unknown backend {name!r}; known backends: {known}")
    return name


def resolve_backend(
    backend: "str | EngineBackend | None",
) -> "EngineBackend":
    """Resolve a ``backend=`` argument to a concrete backend instance.

    Accepts a registry name, an :class:`EngineBackend` instance (passed
    through), or ``None`` (the per-process default).
    """
    from repro.sim.backends import get_backend

    if backend is None:
        return get_backend(_DEFAULT_BACKEND)
    if isinstance(backend, str):
        return get_backend(backend)
    if isinstance(backend, EngineBackend):
        return backend
    raise TypeError(
        f"backend must be a name, an EngineBackend, or None; got {backend!r}"
    )


StopCondition = Callable[[Any], bool]
