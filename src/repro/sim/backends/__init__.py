"""Engine execution backends (ISSUE 8 tentpole).

One registry, three entries:

- ``"exact"`` — the reference per-node engine (general + fast-path
  kernels), bit-identical to historical behavior.  The default.
- ``"vector"`` — the numpy columnar engine (Tier-B numpy RNG streams;
  an order of magnitude faster at ``n >= 10^4``).
- ``"vector-replay"`` — the columnar engine drawing from the exact
  engine's Python RNG streams in the exact engine's order, producing
  bit-identical runs (Tier A); used by the equivalence tests and
  available anywhere a slower-but-provably-exact vector run is wanted.

Importing this package never imports numpy: the vector backend loads it
lazily on first build and raises :class:`BackendUnavailableError` with
an actionable one-liner when it is missing.  Use
:func:`available_backends` to see what can run here.
"""

from __future__ import annotations

from repro.sim.backends.base import (
    AllInformed,
    BackendUnavailableError,
    EngineBackend,
    StopCondition,
    VECTOR_CONTRACTS,
    VectorContract,
    VectorField,
    backend_scope,
    default_backend_name,
    numpy_available,
    resolve_backend,
    set_default_backend,
    vector_contract,
)
from repro.sim.backends.exact import ExactBackend
from repro.sim.backends.vector import VectorBackend, VectorEngine

_BACKENDS: dict[str, EngineBackend] = {
    "exact": ExactBackend(),
    "vector": VectorBackend(),
    "vector-replay": VectorBackend(rng_mode="replay"),
}

#: Names accepted by ``build_engine(backend=...)`` and ``--backend``.
BACKEND_NAMES: tuple[str, ...] = tuple(sorted(_BACKENDS))


def get_backend(name: str) -> EngineBackend:
    """The registered backend for *name* (shared stateless instance)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(BACKEND_NAMES)
        raise ValueError(
            f"unknown backend {name!r}; known backends: {known}"
        ) from None


def available_backends() -> dict[str, str | None]:
    """Map every backend name to ``None`` (usable) or why it is not."""
    return {name: _BACKENDS[name].unavailable_reason() for name in BACKEND_NAMES}


__all__ = [
    "AllInformed",
    "BACKEND_NAMES",
    "BackendUnavailableError",
    "EngineBackend",
    "ExactBackend",
    "StopCondition",
    "VECTOR_CONTRACTS",
    "VectorBackend",
    "VectorContract",
    "VectorEngine",
    "VectorField",
    "available_backends",
    "backend_scope",
    "default_backend_name",
    "get_backend",
    "numpy_available",
    "resolve_backend",
    "set_default_backend",
    "vector_contract",
]
