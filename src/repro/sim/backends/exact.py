"""The exact backend: the reference per-node engine.

``ExactBackend`` is a thin factory over :class:`repro.sim.engine.Engine`
— the general kernel plus the PR-3 fast-path kernel, which remain the
semantics every other backend is measured against.  ``build_engine``
without a ``backend=`` argument resolves here (unless the process
default was changed), so historical call sites are bit-identical to
their pre-backend behavior.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.sim.backends.base import EngineBackend
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.sim.adversary import Jammer
    from repro.sim.channels import Network
    from repro.sim.collision import CollisionModel
    from repro.sim.protocol import Protocol
    from repro.sim.trace import EventTrace


class ExactBackend(EngineBackend):
    """Build the reference :class:`~repro.sim.engine.Engine`."""

    name = "exact"

    def build(
        self,
        network: "Network",
        protocols: "Sequence[Protocol]",
        *,
        collision: "CollisionModel | None" = None,
        seed: int = 0,
        trace: "EventTrace | None" = None,
        jammer: "Jammer | None" = None,
        probe: Any = None,
        profiler: Any = None,
        fast_path: bool = True,
    ) -> Engine:
        return Engine(
            network,
            protocols,
            collision=collision,
            seed=seed,
            trace=trace,
            jammer=jammer,
            probe=probe,
            profiler=profiler,
            fast_path=fast_path,
        )
