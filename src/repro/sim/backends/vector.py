"""The vector backend: a numpy columnar engine for whole populations.

Instead of driving ``n`` Python protocol objects slot by slot, the
vector engine represents the population as arrays — per-slot channel
choices, a broadcaster mask, grouped single-winner collision
resolution, and informed-set updates as boolean array ops — so the
per-slot cost is a fixed number of numpy kernels over ``n``-element
arrays rather than ``~n`` Python-level calls.  On uninstrumented
``n >= 10^4`` COGCAST runs this is well over an order of magnitude
faster than the exact engine's fast path (``benchmarks/bench_backends.py``).

Equivalence contract (see ``docs/performance.md`` "Backends"):

- **Tier A (bit-identical).**  With ``rng_mode="replay"`` the kernel
  draws every random number from the same streams, in the same order,
  as the exact engine: one ``randrange(c)`` per node per slot from the
  node's own :class:`random.Random`, and one ``choice`` per contended
  channel (ascending physical channel order) from the engine's
  collision stream.  Final protocol states, ``RunResult``, and both
  RNG stream states are equal draw for draw — this mode exists to
  prove the columnar grouping/collision/delivery machinery exact, and
  it reuses the fast path's eligibility discipline (exact types only).
- **Tier B (statistical).**  The default ``rng_mode="numpy"`` draws
  from a :class:`numpy.random.Generator` seeded via the repository's
  seed discipline (``derive_seed(seed, "vector-engine")``).  Runs are
  deterministic per seed but follow a different stream than the exact
  engine, so equivalence is established statistically:
  ``tests/test_backends.py`` cross-validates completion-slot and
  collision-rate distributions against the exact backend with
  bootstrap CIs and checks the PR-4 watchdog invariants on the results.

The engine only vectorizes populations whose protocols advertise a
columnar program via the duck-typed ``vector_kind`` /
``vector_export`` / ``vector_import`` contract (today:
``"epidemic-broadcast"``, i.e. COGCAST — every node picks a uniform
random label each slot, informed nodes broadcast one message,
uninformed nodes listen and become informed on any reception, and no
node ever terminates on its own).  Any configuration it cannot prove
equivalent — jammers, non-default collision models, traces, profilers,
per-event probes, unknown protocols, unknown stop conditions — falls
back to the exact engine transparently, so ``backend="vector"`` is
always safe to request.  Aggregate-feed probes
(:class:`repro.obs.metrics.MetricsProbe`) keep working on the vector
path via the ``on_vector_run`` hook.

numpy itself is imported lazily: constructing the backend without
numpy installed raises one actionable error instead of an ImportError
at package import time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.sim.adversary import Jammer, NullJammer
from repro.sim.backends.base import (
    BackendUnavailableError,
    EngineBackend,
    numpy_available,
    vector_contract,
)
from repro.sim.channels import DynamicSchedule, Network, StaticSchedule
from repro.sim.collision import CollisionModel, SingleWinnerCollision
from repro.sim.engine import Engine, RunResult
from repro.sim.rng import derive_rng, derive_seed
from repro.types import SimulationError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.sim.protocol import Protocol
    from repro.sim.trace import EventTrace

#: The columnar programs this engine implements, by ``vector_kind``.
VECTOR_KINDS = ("epidemic-broadcast",)

#: Sentinel for "never informed" in the columnar slot array (``-1`` is
#: taken: it is the exported value for "informed before slot 0").
_NEVER = -2

def _numpy():
    """Import numpy on first use, with a one-line actionable error.

    Called once per run, not per slot; repeat imports are a
    ``sys.modules`` dict hit, so no extra caching layer is needed.
    """
    try:
        import numpy
    except ImportError as exc:
        raise BackendUnavailableError(
            "the vector backend requires numpy: install the perf extra "
            "(pip install 'repro[perf]') or select backend='exact'"
        ) from exc
    return numpy


class VectorEngine:
    """Engine-like executor that runs vectorizable populations columnar.

    Exposes the same observable surface as
    :class:`repro.sim.engine.Engine` (``protocols``, ``network``,
    ``rng``, ``run``, ``all_done``, ``fast_path_engaged``) so runners
    never branch on the backend.  Whether the most recent ``run`` used
    the columnar kernel is recorded in :attr:`vector_engaged`; when it
    fell back, :attr:`vector_fallback_reason` says why.

    Parameters mirror :class:`~repro.sim.engine.Engine`, plus:

    rng_mode:
        ``"numpy"`` (default) draws channel choices and collision
        winners from a seeded :class:`numpy.random.Generator` — the
        fast, Tier-B mode.  ``"replay"`` draws from the exact engine's
        Python streams in the exact engine's order, producing
        bit-identical runs (Tier A) at reduced speedup.
    """

    def __init__(
        self,
        network: Network,
        protocols: "Sequence[Protocol]",
        *,
        collision: CollisionModel | None = None,
        seed: int = 0,
        trace: "EventTrace | None" = None,
        jammer: Jammer | None = None,
        probe: Any = None,
        profiler: Any = None,
        fast_path: bool = True,
        rng_mode: str = "numpy",
    ) -> None:
        if len(protocols) != network.num_nodes:
            raise ValueError(
                f"{len(protocols)} protocols for {network.num_nodes} nodes"
            )
        if rng_mode not in ("numpy", "replay"):
            raise ValueError(f"rng_mode must be 'numpy' or 'replay', got {rng_mode!r}")
        self.network = network
        self.protocols = list(protocols)
        self.collision = collision or SingleWinnerCollision()
        self.rng = derive_rng(seed, "engine-collision")
        self.trace = trace
        self.jammer = jammer or NullJammer()
        self.profiler = profiler
        self.fast_path = fast_path
        self.rng_mode = rng_mode
        self.slot = 0
        self.fast_path_engaged = False
        #: Whether the most recent :meth:`run` used the columnar kernel.
        self.vector_engaged = False
        #: Why the most recent :meth:`run` fell back (``None`` = engaged).
        self.vector_fallback_reason: str | None = None
        self._seed = seed
        self._np_rng = None
        self._exact: Engine | None = None
        self._vector_run_active = False
        self._probe = None
        self.probe = probe

    # -- engine-like surface -------------------------------------------

    @property
    def probe(self) -> Any:
        """The attached streaming probe, if any."""
        return self._probe

    @probe.setter
    def probe(self, probe: Any) -> None:
        if probe is not None and self._vector_run_active:
            raise SimulationError(
                "cannot attach a probe while a vector run is in flight; "
                "attach it before run() or construct the engine with it"
            )
        self._probe = probe
        if self._exact is not None:
            self._exact.probe = probe

    @property
    def all_done(self) -> bool:
        return all(protocol.done for protocol in self.protocols)

    def run(
        self,
        max_slots: int,
        *,
        stop_when: Any = None,
        require_completion: bool = False,
    ) -> RunResult:
        """Run columnar when provably equivalent; otherwise exactly.

        Effects: rng.
        """
        reason = self._vector_ineligible_reason(stop_when)
        self.vector_fallback_reason = reason
        self.vector_engaged = reason is None
        if reason is not None:
            engine = self._exact_engine()
            result = engine.run(
                max_slots,
                stop_when=stop_when,
                require_completion=require_completion,
            )
            self.fast_path_engaged = engine.fast_path_engaged
            self.slot = engine.slot
            return result
        self.fast_path_engaged = False
        probe = self._probe
        if probe is not None:
            probe.on_run_start(
                num_nodes=self.network.num_nodes,
                num_channels=self.network.channels_per_node,
                overlap=self.network.overlap,
            )
        self._vector_run_active = True
        try:
            executed, completed = self._run_vector(max_slots, stop_when)
        finally:
            self._vector_run_active = False
        if probe is not None:
            probe.on_run_end(executed)
        if require_completion and not completed:
            raise SimulationError(
                f"run did not complete within {max_slots} slots"
            )
        return RunResult(
            slots=executed, completed=completed, all_done=self.all_done
        )

    # -- eligibility ----------------------------------------------------

    def _vector_ineligible_reason(self, stop_when: Any) -> str | None:
        """Why this run must take the exact engine (``None`` = columnar).

        Mirrors the fast path's discipline: exact types only, because a
        subclass overriding any hook would change semantics the kernel
        hard-codes.  Unknown protocols or stop conditions are not an
        error — the exact engine handles everything — so requesting the
        vector backend never changes observable behavior, only speed.
        """
        if self.trace is not None:
            return "event trace attached"
        if self.profiler is not None:
            return "profiler attached"
        probe = self._probe
        if probe is not None and not callable(getattr(probe, "on_vector_run", None)):
            return "probe without aggregate (on_vector_run) support"
        if type(self.jammer) is not NullJammer:
            return "jamming adversary attached"
        if type(self.collision) is not SingleWinnerCollision:
            return "non-default collision model"
        if type(self.network) is not Network:
            return "network subclass"
        if self.network.translation_probe is not None:
            return "translation probe attached"
        if type(self.network.schedule) not in (StaticSchedule, DynamicSchedule):
            return "unknown schedule type"
        if stop_when is not None and (
            getattr(stop_when, "vector_condition", None) != "all_informed"
        ):
            return "stop condition has no columnar form"
        for protocol in self.protocols:
            if type(protocol).__dict__.get("vector_kind") not in VECTOR_KINDS:
                return "protocol has no columnar program"
        return None

    def _exact_engine(self) -> Engine:
        """The lazily built fallback engine, sharing the collision stream."""
        if self._exact is None:
            self._exact = Engine(
                self.network,
                self.protocols,
                collision=self.collision,
                seed=self._seed,
                trace=self.trace,
                jammer=self.jammer,
                probe=self._probe,
                profiler=self.profiler,
                fast_path=self.fast_path,
            )
            # One collision stream across both kernels: a replay-mode
            # vector run followed by a fallback run keeps drawing from
            # where the previous run stopped, exactly like one Engine.
            self._exact.rng = self.rng
        return self._exact

    # -- the columnar kernel --------------------------------------------

    def _run_vector(self, max_slots: int, stop_when: Any) -> tuple[int, bool]:
        """Run the ``epidemic-broadcast`` columnar program.

        Effects: rng.
        """
        np = _numpy()
        network = self.network
        n = network.num_nodes
        c = network.channels_per_node
        protocols = self.protocols
        exports = [protocol.vector_export() for protocol in protocols]
        contract = vector_contract("epidemic-broadcast")
        if contract is not None:
            for export in exports:
                missing = contract.missing_fields(export)
                if missing:
                    # A declared-contract violation (a protocol whose
                    # export omits fields the kernel materializes) is
                    # not an error: fall back before any state mutates,
                    # exactly like the other ineligibility paths, and
                    # name the missing fields so the gap is visible.
                    self.vector_engaged = False
                    self.vector_fallback_reason = (
                        "vector export missing contract fields: "
                        + ", ".join(missing)
                    )
                    engine = self._exact_engine()
                    result = engine.run(max_slots, stop_when=stop_when)
                    self.fast_path_engaged = engine.fast_path_engaged
                    self.slot = engine.slot
                    return result.slots, result.completed
        if any(export.get("keep_log") for export in exports):
            # Logs are per-slot Python records; populations that keep
            # them (COGCOMP phase one) take the exact engine.  Checked
            # here, before any state mutates, so falling back is safe.
            self.vector_engaged = False
            self.vector_fallback_reason = "protocol keeps a per-slot log"
            engine = self._exact_engine()
            result = engine.run(max_slots, stop_when=stop_when)
            self.fast_path_engaged = engine.fast_path_engaged
            self.slot = engine.slot
            return result.slots, result.completed

        informed = np.array([bool(e["informed"]) for e in exports], dtype=bool)
        messages: list[Any] = [e["message"] for e in exports]
        parent = np.array(
            [-1 if e["parent"] is None else e["parent"] for e in exports],
            dtype=np.int64,
        )
        informed_slot = np.array(
            [
                _NEVER if e["informed_slot"] is None else e["informed_slot"]
                for e in exports
            ],
            dtype=np.int64,
        )
        informed_label = np.array(
            [
                -1 if e["informed_label"] is None else e["informed_label"]
                for e in exports
            ],
            dtype=np.int64,
        )

        schedule = network.schedule
        static = type(schedule) is StaticSchedule
        rows = np.arange(n)

        def table_for(slot: int) -> tuple[Any, int]:
            """Label->channel table for *slot*, remapped to dense channel ids.

            ``np.unique`` sorts ascending, so the dense ids preserve the
            physical channel order the exact engine resolves channels in.
            """
            table = np.asarray(schedule.labels_at(slot), dtype=np.int64)
            uniq, inverse = np.unique(table, return_inverse=True)
            return inverse.reshape(n, c), len(uniq)

        table, num_channels = table_for(self.slot)
        replay = self.rng_mode == "replay"
        if replay:
            rng_choice = self.rng.choice
            label_draws = [e["rng"].randrange for e in exports]
            np_rng = None
        else:
            if self._np_rng is None:
                self._np_rng = np.random.default_rng(
                    derive_seed(self._seed, "vector-engine")
                )
            np_rng = self._np_rng

        probe = self._probe
        track = probe is not None
        contention_chunks: list[Any] = []
        deliveries = 0
        wasted_listens = 0

        if stop_when is None:
            # Eligible populations never self-terminate (the
            # epidemic-broadcast contract), so the engine's default
            # "all protocols done" condition is constantly false and
            # the run consumes the whole budget, like the exact engine.
            def condition() -> bool:
                return False

        else:

            def condition() -> bool:
                return bool(informed.all())

        labels = None
        executed = 0
        completed = condition()
        while not completed and executed < max_slots:
            slot = self.slot
            if not static:
                table, num_channels = table_for(slot)
            if replay:
                labels = np.fromiter(
                    (draw(c) for draw in label_draws), dtype=np.int64, count=n
                )
            else:
                labels = np_rng.integers(0, c, size=n)
            channels = table[rows, labels]
            broadcaster_nodes = rows[informed]
            broadcaster_channels = channels[informed]
            counts = np.bincount(broadcaster_channels, minlength=num_channels)
            winner_node = np.full(num_channels, -1, dtype=np.int64)
            if broadcaster_nodes.size:
                if replay:
                    # Contended channels resolve in ascending channel
                    # order with one draw each, matching the exact
                    # engine's RNG stream draw for draw; the stable
                    # sort keeps each group in ascending node order,
                    # matching its envelope list.
                    order = np.argsort(broadcaster_channels, kind="stable")
                    sorted_channels = broadcaster_channels[order]
                    sorted_nodes = broadcaster_nodes[order]
                    starts = np.flatnonzero(
                        np.r_[True, sorted_channels[1:] != sorted_channels[:-1]]
                    )
                    ends = np.r_[starts[1:], sorted_channels.size]
                    for start, end in zip(starts.tolist(), ends.tolist()):
                        size = end - start
                        offset = 0 if size == 1 else rng_choice(range(size))
                        winner_node[sorted_channels[start]] = sorted_nodes[
                            start + offset
                        ]
                else:
                    # Uniform winner per channel: iid keys, scatter-min.
                    keys = np_rng.random(broadcaster_nodes.size)
                    channel_min = np.full(num_channels, np.inf)
                    np.minimum.at(channel_min, broadcaster_channels, keys)
                    is_winner = keys <= channel_min[broadcaster_channels]
                    winner_node[broadcaster_channels[is_winner]] = (
                        broadcaster_nodes[is_winner]
                    )
            has_winner = counts > 0
            heard = has_winner[channels]
            listeners = ~informed
            newly = heard & listeners
            new_nodes = np.flatnonzero(newly)
            if track:
                contention_chunks.append(counts[has_winner])
                deliveries += int(new_nodes.size)
                wasted_listens += int(listeners.sum()) - int(new_nodes.size)
            if new_nodes.size:
                winners = winner_node[channels[new_nodes]]
                parent[new_nodes] = winners
                informed_slot[new_nodes] = slot
                informed_label[new_nodes] = labels[new_nodes]
                for node, source in zip(new_nodes.tolist(), winners.tolist()):
                    messages[node] = messages[source]
                informed[new_nodes] = True
            self.slot = slot + 1
            executed += 1
            completed = condition()

        informed_list = informed.tolist()
        parent_list = parent.tolist()
        slot_list = informed_slot.tolist()
        label_list = informed_label.tolist()
        current_labels = (
            [export["current_label"] for export in exports]
            if labels is None
            else labels.tolist()
        )
        for node, protocol in enumerate(protocols):
            protocol.vector_import(
                {
                    "informed": informed_list[node],
                    "message": messages[node],
                    "parent": None if parent_list[node] < 0 else parent_list[node],
                    "informed_slot": (
                        None if slot_list[node] == _NEVER else slot_list[node]
                    ),
                    "informed_label": (
                        None if label_list[node] < 0 else label_list[node]
                    ),
                    "current_label": current_labels[node],
                }
            )
        if track:
            contention = (
                np.concatenate(contention_chunks).tolist()
                if contention_chunks
                else []
            )
            probe.on_vector_run(
                slots=executed,
                contention=contention,
                deliveries=deliveries,
                wasted_listens=wasted_listens,
            )
        return executed, completed


class VectorBackend(EngineBackend):
    """Build a :class:`VectorEngine` (numpy required at build time)."""

    name = "vector"

    def __init__(self, rng_mode: str = "numpy") -> None:
        if rng_mode not in ("numpy", "replay"):
            raise ValueError(
                f"rng_mode must be 'numpy' or 'replay', got {rng_mode!r}"
            )
        self.rng_mode = rng_mode
        if rng_mode == "replay":
            self.name = "vector-replay"

    def unavailable_reason(self) -> str | None:
        if numpy_available():
            return None
        return "numpy is not installed (pip install 'repro[perf]')"

    def build(
        self,
        network: Network,
        protocols: "Sequence[Protocol]",
        *,
        collision: CollisionModel | None = None,
        seed: int = 0,
        trace: "EventTrace | None" = None,
        jammer: Jammer | None = None,
        probe: Any = None,
        profiler: Any = None,
        fast_path: bool = True,
    ) -> VectorEngine:
        _numpy()
        return VectorEngine(
            network,
            protocols,
            collision=collision,
            seed=seed,
            trace=trace,
            jammer=jammer,
            probe=probe,
            profiler=profiler,
            fast_path=fast_path,
            rng_mode=self.rng_mode,
        )
