"""Generic protocol wrappers: budgets and staggered activation.

Two adapters that compose with any :class:`~repro.sim.protocol.Protocol`:

- :class:`BoundedProtocol` — terminate the node after a fixed slot
  budget.  COGCAST is designed to run forever (its Theorem 4 guarantee
  is a budget, not a termination rule); wrapping it with the
  `cogcast_slot_bound` budget yields the terminating variant a real
  deployment would run.
- :class:`DelayedStartProtocol` — the node sleeps until an activation
  slot, then runs its protocol with a *local* slot clock starting at 0.
  The paper assumes all nodes activate simultaneously (Section 2);
  this wrapper lets tests probe how much that assumption carries —
  COGCAST shrugs (late nodes simply start listening late), while
  slot-indexed protocols like COGCOMP genuinely need the assumption.
"""

from __future__ import annotations

from repro.sim.actions import Action, Idle, SlotOutcome
from repro.sim.protocol import Protocol


class BoundedProtocol(Protocol):
    """Runs *inner* for at most *budget* slots, then terminates."""

    def __init__(self, inner: Protocol, budget: int) -> None:
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.inner = inner
        self.budget = budget
        self._slots_used = 0

    def begin_slot(self, slot: int) -> Action:
        self._slots_used += 1
        return self.inner.begin_slot(slot)

    def end_slot(self, slot: int, outcome: SlotOutcome) -> None:
        self.inner.end_slot(slot, outcome)

    @property
    def done(self) -> bool:
        return self.inner.done or self._slots_used >= self.budget


class DelayedStartProtocol(Protocol):
    """Keeps the node asleep until *activation_slot*, then runs *inner*.

    The inner protocol sees slots renumbered from zero at activation,
    so protocols that index phase timetables by slot behave as if they
    had just been switched on.
    """

    def __init__(self, inner: Protocol, activation_slot: int) -> None:
        if activation_slot < 0:
            raise ValueError("activation_slot must be non-negative")
        self.inner = inner
        self.activation_slot = activation_slot

    def _local(self, slot: int) -> int:
        return slot - self.activation_slot

    def begin_slot(self, slot: int) -> Action:
        if slot < self.activation_slot:
            return Idle()
        return self.inner.begin_slot(self._local(slot))

    def end_slot(self, slot: int, outcome: SlotOutcome) -> None:
        if slot < self.activation_slot:
            return
        adjusted = SlotOutcome(
            slot=self._local(slot),
            action=outcome.action,
            received=outcome.received,
            success=outcome.success,
            jammed=outcome.jammed,
            extra_received=outcome.extra_received,
        )
        self.inner.end_slot(self._local(slot), adjusted)

    @property
    def done(self) -> bool:
        return self.inner.done
