"""Channel assignments, local labels, and (possibly dynamic) networks.

The paper's model (Section 2): ``n`` nodes, a universe of ``C`` physical
channels, each node holds ``c`` of them, every pair of nodes overlaps on
at least ``k``.  Nodes address channels through **local labels**: node
``u`` refers to its channels as ``0..c-1`` in an arbitrary private
order, so the same physical channel can carry different labels at
different nodes.

This module provides:

- :class:`ChannelAssignment` — an immutable snapshot assigning each node
  an *ordered* tuple of physical channels; position ``i`` in the tuple
  **is** local label ``i``.  Ordering the tuple arbitrarily per node is
  exactly the paper's local-label model; sorting every tuple yields a
  consistent-order special case, and :meth:`ChannelAssignment.with_global_labels`
  produces the global-label model used by Theorem 16.
- :class:`AssignmentSchedule` — maps a slot to the assignment in force,
  enabling the dynamic model from the discussion section (Theorem 17).
- :class:`Network` — bundles a schedule with the model parameters and
  answers the engine's label-translation queries.
"""

from __future__ import annotations

import abc
import itertools
import random
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import Callable

from repro.types import Channel, InvalidAssignmentError, LocalLabel, NodeId


@dataclass(frozen=True)
class ChannelAssignment:
    """An immutable channel assignment for all nodes at one instant.

    Attributes
    ----------
    channels:
        ``channels[u]`` is the ordered tuple of physical channels node
        ``u`` can tune.  The tuple order defines ``u``'s local labels:
        local label ``i`` means physical channel ``channels[u][i]``.
    overlap:
        The guaranteed minimum pairwise overlap ``k`` this assignment was
        built to satisfy (checked by :meth:`validate`).
    """

    channels: tuple[tuple[Channel, ...], ...]
    overlap: int

    @property
    def num_nodes(self) -> int:
        return len(self.channels)

    @property
    def channels_per_node(self) -> int:
        """``c`` — every node holds the same number of channels."""
        return len(self.channels[0])

    @property
    def universe(self) -> frozenset[Channel]:
        """All physical channels appearing anywhere in the assignment."""
        return frozenset(itertools.chain.from_iterable(self.channels))

    def physical(self, node: NodeId, label: LocalLabel) -> Channel:
        """Translate *node*'s local *label* to a physical channel."""
        return self.channels[node][label]

    @cached_property
    def _label_maps(self) -> tuple[dict[Channel, LocalLabel], ...]:
        """Per-node reverse map (channel -> label), built once on demand.

        The dataclass is frozen but not slotted, so ``cached_property``
        can stash the tables in ``__dict__`` without tripping the
        frozen ``__setattr__``; equality and hashing still consider
        only the declared fields.
        """
        return tuple(
            {channel: label for label, channel in enumerate(chans)}
            for chans in self.channels
        )

    def label_of(self, node: NodeId, channel: Channel) -> LocalLabel:
        """Translate a physical *channel* to *node*'s local label, O(1).

        Raises ``ValueError`` if the node cannot tune the channel.
        """
        try:
            return self._label_maps[node][channel]
        except KeyError:
            raise ValueError(
                f"node {node} cannot tune channel {channel}"
            ) from None

    def channel_set(self, node: NodeId) -> frozenset[Channel]:
        return frozenset(self.channels[node])

    def pairwise_overlap(self, u: NodeId, v: NodeId) -> int:
        """The number of physical channels nodes *u* and *v* share."""
        return len(self.channel_set(u) & self.channel_set(v))

    def min_pairwise_overlap(self) -> int:
        """The smallest overlap over all node pairs (O(n^2 c) scan)."""
        sets = [self.channel_set(u) for u in range(self.num_nodes)]
        return min(
            len(sets[u] & sets[v])
            for u in range(self.num_nodes)
            for v in range(u + 1, self.num_nodes)
        )

    def validate(self) -> None:
        """Check the model invariants; raise :class:`InvalidAssignmentError`.

        Invariants: at least two nodes; every node holds exactly ``c``
        distinct channels; ``1 <= k <= c``; every pair overlaps on at
        least ``k`` channels.
        """
        if self.num_nodes < 2:
            raise InvalidAssignmentError("need at least two nodes")
        c = self.channels_per_node
        if not 1 <= self.overlap <= c:
            raise InvalidAssignmentError(
                f"overlap k={self.overlap} outside 1..c={c}"
            )
        for node, chans in enumerate(self.channels):
            if len(chans) != c:
                raise InvalidAssignmentError(
                    f"node {node} has {len(chans)} channels, expected {c}"
                )
            if len(set(chans)) != len(chans):
                raise InvalidAssignmentError(f"node {node} has duplicate channels")
        actual = self.min_pairwise_overlap()
        if actual < self.overlap:
            raise InvalidAssignmentError(
                f"minimum pairwise overlap {actual} < required k={self.overlap}"
            )

    def shuffled_labels(self, rng: random.Random) -> "ChannelAssignment":
        """Return a copy with every node's local label order re-randomized.

        This is the canonical way to produce the paper's *local channel
        label* model from any generator output.
        """
        shuffled = []
        for chans in self.channels:
            order = list(chans)
            rng.shuffle(order)
            shuffled.append(tuple(order))
        return ChannelAssignment(tuple(shuffled), self.overlap)

    def with_global_labels(self) -> "ChannelAssignment":
        """Return a copy with every node's channels sorted ascending.

        Under this ordering, any two nodes that share physical channel
        ``q`` rank it consistently, which is how the *global channel
        label* model (Theorem 16) is realized: algorithms that address
        channels by sorted rank address them consistently network-wide
        whenever the channel sets coincide.
        """
        return ChannelAssignment(
            tuple(tuple(sorted(chans)) for chans in self.channels), self.overlap
        )


class AssignmentSchedule(abc.ABC):
    """Maps a slot index to the :class:`ChannelAssignment` in force.

    The paper's base model is static (one assignment for the whole
    execution); the discussion section's dynamic model allows the
    assignment to change every slot as long as each instant satisfies
    the pairwise-overlap invariant.
    """

    @abc.abstractmethod
    def at(self, slot: int) -> ChannelAssignment:
        """The assignment in force during *slot*."""

    def labels_at(self, slot: int) -> tuple[tuple[int, ...], ...]:
        """Every node's ordered channel tuple at *slot*, in one call.

        ``labels_at(slot)[node][label]`` is the physical channel node
        ``node`` reaches through local label ``label`` — the full
        label->channel table as one batch query, so columnar consumers
        (the vector backend) pay one schedule lookup per slot instead of
        ``n`` per-node ``physical`` calls.  Goes through :meth:`at`, so
        :class:`DynamicSchedule` caching (and its LRU bound) applies
        unchanged.
        """
        return self.at(slot).channels

    @property
    @abc.abstractmethod
    def num_nodes(self) -> int: ...

    @property
    @abc.abstractmethod
    def channels_per_node(self) -> int: ...

    @property
    @abc.abstractmethod
    def overlap(self) -> int: ...


class StaticSchedule(AssignmentSchedule):
    """The base model: one fixed assignment."""

    def __init__(self, assignment: ChannelAssignment) -> None:
        self._assignment = assignment

    def at(self, slot: int) -> ChannelAssignment:
        return self._assignment

    @property
    def num_nodes(self) -> int:
        return self._assignment.num_nodes

    @property
    def channels_per_node(self) -> int:
        return self._assignment.channels_per_node

    @property
    def overlap(self) -> int:
        return self._assignment.overlap


class DynamicSchedule(AssignmentSchedule):
    """The dynamic model: a fresh assignment per slot, generated lazily.

    *generator* is called with the slot index and must return an
    assignment with the same ``(n, c, k)`` shape.  Generated assignments
    are cached so that re-querying a slot (e.g. by a trace consumer) is
    consistent.

    Parameters
    ----------
    max_cache:
        When set, the cache holds at most this many assignments and
        evicts the least recently used one as new slots are generated
        — the right choice for long runs, which otherwise leak one
        assignment per slot.  Only safe when *generator* is a pure
        function of the slot index (the contract for deterministic
        replay anyway): a generator that draws from a shared, stateful
        RNG would regenerate an evicted slot differently.  ``None``
        (the default) keeps every assignment forever.
    """

    def __init__(
        self,
        generator: Callable[[int], ChannelAssignment],
        *,
        validate_each: bool = False,
        max_cache: int | None = None,
    ) -> None:
        if max_cache is not None and max_cache < 1:
            raise ValueError("max_cache must be positive")
        self._generator = generator
        self._validate_each = validate_each
        self._max_cache = max_cache
        self._cache: OrderedDict[int, ChannelAssignment] = OrderedDict()
        first = self.at(0)
        self._num_nodes = first.num_nodes
        self._channels_per_node = first.channels_per_node
        self._overlap = first.overlap

    def at(self, slot: int) -> ChannelAssignment:
        cache = self._cache
        if slot in cache:
            cache.move_to_end(slot)
            return cache[slot]
        assignment = self._generator(slot)
        if self._validate_each:
            assignment.validate()
        cache[slot] = assignment
        if self._max_cache is not None and len(cache) > self._max_cache:
            cache.popitem(last=False)
        return assignment

    @property
    def cache_size(self) -> int:
        """Number of assignments currently held in the cache."""
        return len(self._cache)

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def channels_per_node(self) -> int:
        return self._channels_per_node

    @property
    def overlap(self) -> int:
        return self._overlap


class Network:
    """The world as the engine sees it: schedule + model parameters.

    The network object is the single source of truth for translating a
    node's local label to a physical channel at a given slot, and for
    the scalar parameters ``n``, ``c``, ``k`` that protocols are allowed
    to know.
    """

    def __init__(self, schedule: AssignmentSchedule) -> None:
        self.schedule = schedule
        self._probe: object | None = None

    def attach_probe(self, probe: object | None) -> None:
        """Attach (or, with ``None``, detach) a translation observer.

        The observer's ``on_translation(slot, node, label, channel)``
        hook fires on every successful label translation.  Duck-typed so
        this module never imports :mod:`repro.obs`; costs one ``is
        None`` check per translation when detached.
        """
        self._probe = probe

    @property
    def translation_probe(self) -> object | None:
        """The attached translation observer, if any (read-only)."""
        return self._probe

    @classmethod
    def static(cls, assignment: ChannelAssignment, *, validate: bool = True) -> "Network":
        """Build a static network, validating the assignment by default."""
        if validate:
            assignment.validate()
        return cls(StaticSchedule(assignment))

    @property
    def num_nodes(self) -> int:
        return self.schedule.num_nodes

    @property
    def channels_per_node(self) -> int:
        return self.schedule.channels_per_node

    @property
    def overlap(self) -> int:
        return self.schedule.overlap

    def physical(self, slot: int, node: NodeId, label: LocalLabel) -> Channel:
        """Physical channel behind *node*'s *label* during *slot*."""
        if not 0 <= label < self.channels_per_node:
            from repro.types import ProtocolViolationError

            raise ProtocolViolationError(
                f"node {node} used local label {label}; "
                f"valid labels are 0..{self.channels_per_node - 1}"
            )
        channel = self.schedule.at(slot).physical(node, label)
        if self._probe is not None:
            self._probe.on_translation(slot, node, label, channel)
        return channel

    def assignment_at(self, slot: int) -> ChannelAssignment:
        return self.schedule.at(slot)
