"""The slot-synchronous simulation engine.

One :class:`Engine` drives one execution: each slot it collects an
action from every live protocol, translates local labels to physical
channels via the :class:`~repro.sim.channels.Network`, applies the
jammer (if any), resolves contention per channel with the configured
:class:`~repro.sim.collision.CollisionModel`, and feeds every node its
:class:`~repro.sim.actions.SlotOutcome`.

The engine enforces the information model: protocols only ever see local
labels and their own outcomes.  All global knowledge (physical channels,
who collided with whom) lives here and, optionally, in an
:class:`~repro.sim.trace.EventTrace` for analysis.

Observability: the engine carries two optional, duck-typed instruments
from :mod:`repro.obs` — a *probe* (fired per slot, per channel event,
and, for node-observing probes, per action/outcome) and a *profiler*
(``perf_counter`` wall time attributed to the ``engine.collect`` /
``engine.resolve`` / ``engine.deliver`` sections).  Both default to
``None`` and cost exactly one ``is None`` check per hook site when
absent, so un-instrumented runs keep their benchmark numbers.  The
engine deliberately does not import :mod:`repro.obs` (the dependency
points the other way); any object with the right hooks works.

Performance: :meth:`Engine.run` detects the common configuration —
static schedule, no jammer, the paper's single-winner collision model,
no instrumentation — and switches to a specialized step kernel that
precomputes the label→channel tables and skips every hook, while
producing bit-identical results (same outcomes, same RNG stream, same
errors).  See :meth:`Engine._fast_path_eligible` and
``docs/performance.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.sim.actions import Action, Broadcast, Envelope, Idle, Listen, SlotOutcome
from repro.sim.adversary import Jammer, NullJammer
from repro.sim.channels import Network, StaticSchedule
from repro.sim.collision import CollisionModel, SingleWinnerCollision
from repro.sim.protocol import NodeView, Protocol
from repro.sim.rng import derive_rng
from repro.sim.trace import ChannelEvent, EventTrace
from repro.types import Channel, NodeId, ProtocolViolationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - types only; sim must not import obs
    from repro.obs.probe import SlotProbe
    from repro.obs.profiler import Profiler


@dataclass(frozen=True, slots=True)
class RunResult:
    """Summary of one engine run.

    Attributes
    ----------
    slots: number of slots executed.
    completed: whether the stop condition was met (as opposed to the
        slot budget running out).
    all_done: whether every protocol had terminated when the run ended.
    """

    slots: int
    completed: bool
    all_done: bool


class Engine:
    """Drives a set of per-node protocols over a network.

    Parameters
    ----------
    network:
        The world model (channel schedule + parameters).
    protocols:
        One protocol per node, indexed by node id.
    collision:
        Contention model; defaults to the paper's single-winner model.
    seed:
        Root seed for the engine's own randomness (collision tie-breaks).
        Node randomness comes from each protocol's own RNG.
    trace:
        Optional event trace to populate.
    jammer:
        Optional jamming adversary.
    probe:
        Optional streaming probe (see :mod:`repro.obs.probe`).  Fired
        per slot and per channel event; probes whose
        ``observes_nodes`` attribute is true additionally receive every
        node's action and outcome.  These hook points are the engine's
        whole instrumentation surface: spans, watchdogs, and the
        metrics registry feeder
        (:class:`repro.obs.metrics.MetricsProbe` — slots, broadcasts,
        collisions, deliveries) all ride them, so adding an instrument
        never adds a new hot-path branch.
    profiler:
        Optional profiler (see :mod:`repro.obs.profiler`).  Populates
        the ``engine.collect`` / ``engine.resolve`` / ``engine.deliver``
        wall-time sections.
    fast_path:
        Allow :meth:`run` to use the specialized step kernel when the
        configuration permits (see :meth:`_fast_path_eligible`).  The
        kernel is bit-identical to the general one — same outcomes,
        same RNG stream, same errors — so this is purely a performance
        switch; set False to force the general kernel (used by the
        equivalence tests).
    """

    def __init__(
        self,
        network: Network,
        protocols: Sequence[Protocol],
        *,
        collision: CollisionModel | None = None,
        seed: int = 0,
        trace: EventTrace | None = None,
        jammer: Jammer | None = None,
        probe: "SlotProbe | None" = None,
        profiler: "Profiler | None" = None,
        fast_path: bool = True,
    ) -> None:
        if len(protocols) != network.num_nodes:
            raise ValueError(
                f"{len(protocols)} protocols for {network.num_nodes} nodes"
            )
        self.network = network
        self.protocols = list(protocols)
        self.collision = collision or SingleWinnerCollision()
        self.rng = derive_rng(seed, "engine-collision")
        self.trace = trace
        self.jammer = jammer or NullJammer()
        self.profiler = profiler
        self._probe: "SlotProbe | None" = None
        self._node_probe: "SlotProbe | None" = None
        self._fast_run_active = False
        self.probe = probe
        self.slot = 0
        self.fast_path = fast_path
        #: Whether the most recent :meth:`run` used the fast kernel.
        self.fast_path_engaged = False

    @property
    def probe(self) -> "SlotProbe | None":
        """The attached streaming probe, if any."""
        return self._probe

    @probe.setter
    def probe(self, probe: "SlotProbe | None") -> None:
        # The fast kernel fires no hooks, so a probe attached while it
        # is in flight (e.g. from a stop_when callback) would be
        # silently ignored for the rest of the run — refuse instead.
        # Between runs, attaching is safe: eligibility is re-checked at
        # the top of every run(), so the next run leaves the fast path.
        if probe is not None and self._fast_run_active:
            raise SimulationError(
                "cannot attach a probe while a fast-path run is in flight; "
                "attach it before run() or construct the engine with it"
            )
        # Resolve the per-node dispatch decision once, not per slot.
        self._probe = probe
        self._node_probe = (
            probe
            if probe is not None and getattr(probe, "observes_nodes", False)
            else None
        )

    @property
    def all_done(self) -> bool:
        return all(protocol.done for protocol in self.protocols)

    def step(self) -> None:
        """Execute one synchronous slot.

        Effects: rng, perf-counter.
        """
        slot = self.slot
        num_nodes = self.network.num_nodes
        probe = self._probe
        node_probe = self._node_probe
        profiler = self.profiler
        if profiler is not None:
            section_start = perf_counter()
        if probe is not None:
            probe.on_slot_begin(slot)

        actions: dict[NodeId, Action] = {}
        for node, protocol in enumerate(self.protocols):
            if protocol.done:
                continue
            action = protocol.begin_slot(slot)
            actions[node] = action
            if node_probe is not None:
                node_probe.on_action(slot, node, action)

        jammed_at = self.jammer.jammed(slot, num_nodes)

        # Group participants by physical channel.
        broadcasters: dict[Channel, list[tuple[NodeId, Envelope]]] = {}
        listeners: dict[Channel, list[NodeId]] = {}
        jammed_participants: dict[Channel, set[NodeId]] = {}
        tuned: dict[NodeId, Channel] = {}
        for node, action in actions.items():
            if isinstance(action, Idle):
                continue
            channel = self.network.physical(slot, node, action.label)
            tuned[node] = channel
            if channel in jammed_at.get(node, frozenset()):
                jammed_participants.setdefault(channel, set()).add(node)
                continue
            if isinstance(action, Broadcast):
                envelope = Envelope(sender=node, payload=action.payload)
                broadcasters.setdefault(channel, []).append((node, envelope))
            else:
                listeners.setdefault(channel, []).append(node)

        if profiler is not None:
            now = perf_counter()
            profiler.add("engine.collect", now - section_start)
            section_start = now

        # Resolve contention channel by channel.
        outcomes: dict[NodeId, SlotOutcome] = {}
        active_channels = sorted(set(broadcasters) | set(listeners) | set(jammed_participants))
        for channel in active_channels:
            channel_broadcasters = broadcasters.get(channel, [])
            channel_listeners = listeners.get(channel, [])
            channel_jammed = jammed_participants.get(channel, set())
            resolution = self.collision.resolve(
                [envelope for _, envelope in channel_broadcasters], self.rng
            )
            winner = resolution.winner

            for node, envelope in channel_broadcasters:
                success = winner is not None and envelope is winner
                extras = tuple(
                    extra for extra in resolution.extras if extra is not envelope
                )
                outcomes[node] = SlotOutcome(
                    slot=slot,
                    action=actions[node],
                    received=None if success else winner,
                    success=success,
                    extra_received=extras,
                )
            for node in channel_listeners:
                outcomes[node] = SlotOutcome(
                    slot=slot,
                    action=actions[node],
                    received=winner,
                    extra_received=resolution.extras,
                )
            for node in channel_jammed:
                outcomes[node] = SlotOutcome(
                    slot=slot,
                    action=actions[node],
                    received=None,
                    success=False if isinstance(actions[node], Broadcast) else None,
                    jammed=True,
                )

            if self.trace is not None or probe is not None:
                event = ChannelEvent(
                    slot=slot,
                    channel=channel,
                    broadcasters=tuple(
                        node for node, _ in channel_broadcasters
                    )
                    + tuple(
                        node
                        for node in channel_jammed
                        if isinstance(actions[node], Broadcast)
                    ),
                    listeners=tuple(channel_listeners)
                    + tuple(
                        node
                        for node in channel_jammed
                        if isinstance(actions[node], Listen)
                    ),
                    winner=winner,
                    jammed_nodes=frozenset(channel_jammed),
                )
                if self.trace is not None:
                    self.trace.record(event)
                if probe is not None:
                    probe.on_channel_event(event)

        if profiler is not None:
            now = perf_counter()
            profiler.add("engine.resolve", now - section_start)
            section_start = now

        # Idle nodes still get an outcome so protocols see every slot.
        for node, action in actions.items():
            if node not in outcomes:
                outcomes[node] = SlotOutcome(slot=slot, action=action)

        for node, outcome in outcomes.items():
            self.protocols[node].end_slot(slot, outcome)
            if node_probe is not None:
                node_probe.on_outcome(slot, node, outcome)

        if probe is not None:
            probe.on_slot_end(slot, len(actions))
        if profiler is not None:
            profiler.add("engine.deliver", perf_counter() - section_start)

        self.slot += 1

    def _fast_path_eligible(self) -> bool:
        """Whether :meth:`run` may use the specialized step kernel.

        The common benchmark configuration — a static assignment, no
        jamming, the paper's single-winner contention model, and no
        instrumentation — pays for generality it never uses: per-action
        ``schedule.at`` lookups, the jammer query, and a handful of
        ``is None`` hook checks every slot.  The fast kernel elides all
        of that.  Exact types are required (not ``isinstance``) because
        a subclass overriding any of these hooks would change the
        semantics the kernel hard-codes.
        """
        return (
            self.fast_path
            and self.trace is None
            and self._probe is None
            and self.profiler is None
            and type(self.jammer) is NullJammer
            and type(self.collision) is SingleWinnerCollision
            and type(self.network) is Network
            and type(self.network.schedule) is StaticSchedule
            and self.network.translation_probe is None
        )

    def _run_fast(
        self, max_slots: int, condition: Callable[["Engine"], bool]
    ) -> tuple[int, bool]:
        """The specialized run loop; bit-identical to the general path.

        Equivalence invariants (guarded by tests/test_engine_fastpath.py):

        - label translation uses a precomputed per-node table from the
          static assignment, with the same bounds check and error as
          :meth:`Network.physical`;
        - channels resolve in sorted order and the collision RNG is
          consulted exactly when two or more nodes broadcast on one
          channel, via the same ``rng.choice`` call the general path's
          :class:`SingleWinnerCollision` makes — so the RNG stream is
          identical draw for draw;
        - outcomes are constructed with the same field values and
          delivered in the same order.

        Per-slot scratch dicts are allocated once and cleared, not
        rebuilt, which is safe because nothing retains the containers —
        outcomes hold the (immutable) actions and envelopes themselves.
        """
        protocols = self.protocols
        table = self.network.assignment_at(0).channels
        num_labels = self.network.channels_per_node
        choice = self.rng.choice
        # Hoisted constructors/sentinels: global lookups are not free at
        # ~one SlotOutcome per node per slot.
        outcome_cls = SlotOutcome
        envelope_cls = Envelope
        idle_cls = Idle
        broadcast_cls = Broadcast
        listen_cls = Listen
        broadcasters: dict[Channel, list[tuple[NodeId, Action, Envelope]]] = {}
        listeners: dict[Channel, list[tuple[NodeId, Action]]] = {}
        idles: list[tuple[NodeId, Action]] = []
        outcomes: dict[NodeId, SlotOutcome] = {}
        executed = 0
        completed = condition(self)
        while not completed and executed < max_slots:
            slot = self.slot
            broadcasters.clear()
            listeners.clear()
            idles.clear()
            outcomes.clear()
            for node, protocol in enumerate(protocols):
                if protocol.done:
                    continue
                action = protocol.begin_slot(slot)
                cls = action.__class__
                if cls is idle_cls:
                    idles.append((node, action))
                    continue
                if cls is not broadcast_cls and cls is not listen_cls:
                    # Action subclass: route by isinstance, exactly as
                    # the general kernel would.
                    if isinstance(action, idle_cls):
                        idles.append((node, action))
                        continue
                    cls = broadcast_cls if isinstance(action, broadcast_cls) else listen_cls
                label = action.label
                if not 0 <= label < num_labels:
                    raise ProtocolViolationError(
                        f"node {node} used local label {label}; "
                        f"valid labels are 0..{num_labels - 1}"
                    )
                channel = table[node][label]
                if cls is broadcast_cls:
                    entry = (node, action, envelope_cls(node, action.payload))
                    bucket = broadcasters.get(channel)
                    if bucket is None:
                        broadcasters[channel] = [entry]
                    else:
                        bucket.append(entry)
                else:
                    pair = (node, action)
                    pairs = listeners.get(channel)
                    if pairs is None:
                        listeners[channel] = [pair]
                    else:
                        pairs.append(pair)

            for channel in sorted(broadcasters.keys() | listeners.keys()):
                channel_broadcasters = broadcasters.get(channel)
                if channel_broadcasters is None:
                    winner = None
                elif len(channel_broadcasters) == 1:
                    # Single participant: no contention, no RNG draw —
                    # exactly what SingleWinnerCollision.resolve does.
                    node, action, winner = channel_broadcasters[0]
                    outcomes[node] = outcome_cls(slot, action, None, True)
                else:
                    winner = choice(
                        [envelope for _, _, envelope in channel_broadcasters]
                    )
                    for node, action, envelope in channel_broadcasters:
                        if envelope is winner:
                            outcomes[node] = outcome_cls(slot, action, None, True)
                        else:
                            outcomes[node] = outcome_cls(slot, action, winner, False)
                channel_listeners = listeners.get(channel)
                if channel_listeners is not None:
                    for node, action in channel_listeners:
                        outcomes[node] = outcome_cls(slot, action, winner)

            for node, outcome in outcomes.items():
                protocols[node].end_slot(slot, outcome)
            # Idle nodes still get an outcome, delivered after the
            # channel participants exactly as in the general kernel.
            for node, action in idles:
                protocols[node].end_slot(slot, outcome_cls(slot, action))

            self.slot += 1
            executed += 1
            completed = condition(self)
        return executed, completed

    def run(
        self,
        max_slots: int,
        *,
        stop_when: Callable[["Engine"], bool] | None = None,
        require_completion: bool = False,
    ) -> RunResult:
        """Run until the stop condition, all protocols terminate, or the budget.

        Parameters
        ----------
        max_slots:
            Hard budget on the number of slots executed by this call.
        stop_when:
            Optional predicate evaluated after every slot; the run stops
            as soon as it returns True.  When omitted, the run stops when
            every protocol reports :attr:`Protocol.done`.
        require_completion:
            When True, raise :class:`SimulationError` if the budget runs
            out before the stop condition is met.

        When the configuration allows (static schedule, no jammer, the
        default collision model, no instrumentation — see
        :meth:`_fast_path_eligible`), the run uses a specialized kernel
        that produces bit-identical results faster; whether it engaged
        is recorded in :attr:`fast_path_engaged`.

        Effects: rng, perf-counter.
        """
        condition = stop_when if stop_when is not None else (lambda engine: engine.all_done)
        probe = self._probe
        if probe is not None:
            probe.on_run_start(
                num_nodes=self.network.num_nodes,
                num_channels=self.network.channels_per_node,
                overlap=self.network.overlap,
            )
        self.fast_path_engaged = self._fast_path_eligible()
        if self.fast_path_engaged:
            self._fast_run_active = True
            try:
                executed, completed = self._run_fast(max_slots, condition)
            finally:
                self._fast_run_active = False
        else:
            executed = 0
            completed = condition(self)
            while not completed and executed < max_slots:
                self.step()
                executed += 1
                completed = condition(self)
        if probe is not None:
            probe.on_run_end(executed)
        if require_completion and not completed:
            raise SimulationError(
                f"run did not complete within {max_slots} slots"
            )
        return RunResult(slots=executed, completed=completed, all_done=self.all_done)


def make_views(network: Network, seed: int) -> list[NodeView]:
    """Construct one :class:`NodeView` per node with independent RNGs."""
    return [
        NodeView(
            node_id=node,
            num_channels=network.channels_per_node,
            overlap=network.overlap,
            num_nodes=network.num_nodes,
            rng=derive_rng(seed, "node", node),
        )
        for node in range(network.num_nodes)
    ]


def build_engine(
    network: Network,
    protocol_factory: Callable[[NodeView], Protocol],
    *,
    seed: int = 0,
    collision: CollisionModel | None = None,
    trace: EventTrace | None = None,
    jammer: Jammer | None = None,
    probe: "SlotProbe | None" = None,
    profiler: "Profiler | None" = None,
    fast_path: bool = True,
    backend: object = None,
) -> Any:
    """Convenience constructor: build views, protocols, and the engine.

    *protocol_factory* receives each node's :class:`NodeView` and returns
    that node's protocol (it can branch on ``view.node_id`` to make one
    node the source).

    *backend* selects the execution backend: a registry name
    (``"exact"``, ``"vector"``, ``"vector-replay"``), an
    :class:`~repro.sim.backends.base.EngineBackend` instance, or
    ``None`` for the per-process default (``"exact"`` unless changed via
    :func:`repro.sim.backends.set_default_backend` / the CLI's
    ``--backend`` flag).  Whatever the backend, the returned object has
    the :class:`Engine` run surface; views, protocols, and seed
    derivation are identical across backends.
    """
    # Imported here, not at module top: backends import this module.
    from repro.sim.backends.base import resolve_backend

    views = make_views(network, seed)
    protocols = [protocol_factory(view) for view in views]
    return resolve_backend(backend).build(
        network,
        protocols,
        collision=collision,
        seed=seed,
        trace=trace,
        jammer=jammer,
        probe=probe,
        profiler=profiler,
        fast_path=fast_path,
    )
