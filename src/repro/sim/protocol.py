"""The protocol interface that node algorithms implement.

A :class:`Protocol` is a per-node state machine driven by the engine:

- :meth:`Protocol.begin_slot` is called at the start of each slot and
  must return an :class:`~repro.sim.actions.Action`;
- :meth:`Protocol.end_slot` is called with the resulting
  :class:`~repro.sim.actions.SlotOutcome`;
- :attr:`Protocol.done` tells the engine the node has terminated (a
  terminated node implicitly idles).

Protocols are constructed with a :class:`NodeView` — the *only* handle a
node algorithm gets on the world.  It exposes the node's identity, how
many channels it has, and its private RNG.  It deliberately does **not**
expose physical channel identifiers, other nodes' channel sets, or the
overlap structure: the paper's model gives nodes none of that.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass

from repro.sim.actions import Action, SlotOutcome
from repro.types import NodeId


@dataclass(frozen=True, slots=True)
class NodeView:
    """A node's local view of the network.

    Attributes
    ----------
    node_id:
        This node's unique identity (known to the node, per the model).
    num_channels:
        ``c`` — how many channels this node can tune; local labels are
        ``0..num_channels-1``.
    overlap:
        ``k`` — the guaranteed pairwise overlap (known to nodes, per the
        model: "Each node knows the value of k").
    num_nodes:
        ``n`` — used by the paper's algorithms only to size their running
        time (Theorem 4's discussion notes no other dependence).
    rng:
        This node's private random stream.
    """

    node_id: NodeId
    num_channels: int
    overlap: int
    num_nodes: int
    rng: random.Random

    def random_label(self) -> int:
        """A local channel label chosen uniformly at random."""
        return self.rng.randrange(self.num_channels)


class Protocol(abc.ABC):
    """Base class for per-node algorithms.

    Subclasses receive their :class:`NodeView` however they like
    (conventionally as the first constructor argument) and implement the
    two slot hooks.  The engine guarantees ``begin_slot``/``end_slot``
    are called in strictly alternating order with increasing slot
    numbers, and stops calling both once :attr:`done` is true.
    """

    @abc.abstractmethod
    def begin_slot(self, slot: int) -> Action:
        """Choose this node's action for *slot*."""

    @abc.abstractmethod
    def end_slot(self, slot: int, outcome: SlotOutcome) -> None:
        """Observe the outcome of *slot*."""

    @property
    def done(self) -> bool:
        """Whether this node has terminated.  Defaults to never."""
        return False


class IdleProtocol(Protocol):
    """A protocol that never participates.  Useful in tests."""

    def __init__(self, view: NodeView) -> None:
        self.view = view

    def begin_slot(self, slot: int) -> Action:
        from repro.sim.actions import Idle

        return Idle()

    def end_slot(self, slot: int, outcome: SlotOutcome) -> None:
        return None
