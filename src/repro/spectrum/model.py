"""A spatial primary-user spectrum model (the paper's motivating layer).

The paper's introduction grounds cognitive radio in two scenarios:
secondary users scavenging leftover spectrum in licensed bands (TV
whitespace), and dense unlicensed coexistence.  The algorithmic model
then abstracts all of that into per-node channel sets.  This package
builds the bridge: a concrete spatial world — primary transmitters with
protection radii, secondary nodes at positions — from which each node's
available channel set *derives*, instead of being hand-assigned.

The derivation rule is the regulatory one: channel ``f`` is unavailable
at node ``p`` when ``p`` lies inside the protection radius of any
primary licensed on ``f``.  Pairwise overlap is then an *emergent*
quantity: nearby nodes see nearly the same spectrum, distant nodes can
differ, and the network-wide minimum overlap ``k`` must be measured
(``min_pairwise_overlap``) rather than assumed — which is exactly how a
deployment would obtain the ``k`` the paper's algorithms take as input.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.sim.channels import ChannelAssignment, DynamicSchedule
from repro.types import Channel, InvalidAssignmentError


@dataclass(frozen=True, slots=True)
class PrimaryUser:
    """A licensed transmitter: position, protected radius, channel."""

    x: float
    y: float
    radius: float
    channel: Channel

    def covers(self, x: float, y: float) -> bool:
        return math.hypot(self.x - x, self.y - y) <= self.radius


@dataclass(frozen=True, slots=True)
class SecondaryNode:
    """A cognitive-radio device at a fixed position."""

    x: float
    y: float


@dataclass(frozen=True)
class SpectrumWorld:
    """One instant of the spatial world: primaries + secondaries + band."""

    num_channels: int
    primaries: tuple[PrimaryUser, ...]
    secondaries: tuple[SecondaryNode, ...]

    def available_channels(self, node_index: int) -> tuple[Channel, ...]:
        """Channels usable at the node: not covered by any primary."""
        node = self.secondaries[node_index]
        blocked = {
            primary.channel
            for primary in self.primaries
            if primary.covers(node.x, node.y)
        }
        return tuple(
            channel for channel in range(self.num_channels) if channel not in blocked
        )

    def to_assignment(self, *, pad_to_uniform: bool = True) -> ChannelAssignment:
        """Derive the algorithmic-model assignment from the world.

        The paper's model needs every node to hold the same count ``c``;
        spatial worlds naturally produce unequal set sizes, so by
        default each node keeps only its first ``c = min_i |A_i|``
        channels (dropping its highest-indexed extras).  Dropping
        channels can only shrink overlaps, so any measured ``k`` remains
        a sound guarantee.  Raises when some node has no channels at all
        or when two nodes end up disjoint.
        """
        per_node = [
            list(self.available_channels(index))
            for index in range(len(self.secondaries))
        ]
        if any(not channels for channels in per_node):
            empty = [i for i, chans in enumerate(per_node) if not chans]
            raise InvalidAssignmentError(
                f"nodes {empty} have no available channels (fully covered)"
            )
        if pad_to_uniform:
            c = min(len(channels) for channels in per_node)
            per_node = [channels[:c] for channels in per_node]
        assignment = ChannelAssignment(
            tuple(tuple(channels) for channels in per_node),
            overlap=1,
        )
        measured = assignment.min_pairwise_overlap()
        if measured < 1:
            raise InvalidAssignmentError(
                "some node pair shares no channels; the single-hop model "
                "needs k >= 1 — thin out the primaries or widen the band"
            )
        return ChannelAssignment(assignment.channels, overlap=measured)


def random_world(
    *,
    num_channels: int,
    num_primaries: int,
    num_secondaries: int,
    area: float,
    primary_radius: float,
    rng: random.Random,
    cluster_radius: float | None = None,
) -> SpectrumWorld:
    """Sample a world: primaries uniform over the area, secondaries
    either uniform or clustered (single-hop networks are physically
    close, so clustering within ``cluster_radius`` of a random center is
    the realistic default when provided)."""
    primaries = tuple(
        PrimaryUser(
            x=rng.uniform(0, area),
            y=rng.uniform(0, area),
            radius=primary_radius,
            channel=rng.randrange(num_channels),
        )
        for _ in range(num_primaries)
    )
    if cluster_radius is not None:
        center_x = rng.uniform(0, area)
        center_y = rng.uniform(0, area)
        secondaries = tuple(
            SecondaryNode(
                x=center_x + rng.uniform(-cluster_radius, cluster_radius),
                y=center_y + rng.uniform(-cluster_radius, cluster_radius),
            )
            for _ in range(num_secondaries)
        )
    else:
        secondaries = tuple(
            SecondaryNode(x=rng.uniform(0, area), y=rng.uniform(0, area))
            for _ in range(num_secondaries)
        )
    return SpectrumWorld(
        num_channels=num_channels,
        primaries=primaries,
        secondaries=secondaries,
    )


def churning_schedule(
    base: SpectrumWorld,
    seed: int,
    *,
    off_probability: float = 0.2,
) -> DynamicSchedule:
    """A dynamic schedule from primary-user churn.

    Each slot > 0, every primary is independently *off* with
    *off_probability* (wireless microphones pausing, intermittent
    licensees); the per-slot assignment derives from the active subset.
    Slot 0 uses the full base world — the most-restrictive instant — so
    every later slot's per-node availability is a superset of slot 0's,
    and the constant per-node channel count ``c`` (the base world's
    minimum) is always achievable.

    Honesty note: each slot's assignment is trimmed to the ``c``
    lowest-indexed available channels, which can *reshuffle* which
    channels a node works, so the per-slot pairwise overlap is measured
    and stored per slot rather than inherited from the base world.  The
    paper's dynamic model requires overlap >= k in every slot; callers
    should check the schedule with :func:`min_overlap_over` before
    relying on a specific ``k`` (the bundled example does).
    """
    from repro.sim.rng import derive_rng

    base_assignment = base.to_assignment()
    base_c = base_assignment.channels_per_node

    def generate(slot: int) -> ChannelAssignment:
        if slot == 0:
            return base_assignment
        rng = derive_rng(seed, "churn", slot)
        active = tuple(
            primary
            for primary in base.primaries
            if rng.random() >= off_probability
        )
        world = SpectrumWorld(
            num_channels=base.num_channels,
            primaries=active,
            secondaries=base.secondaries,
        )
        raw = world.to_assignment(pad_to_uniform=False)
        trimmed = ChannelAssignment(
            tuple(tuple(channels[:base_c]) for channels in raw.channels),
            overlap=1,
        )
        measured = trimmed.min_pairwise_overlap()
        if measured < 1:
            # Fall back to the base working sets for this slot: they are
            # all still available (churn only removes primaries).
            return base_assignment
        return ChannelAssignment(trimmed.channels, overlap=measured)

    return DynamicSchedule(generate)


def min_overlap_over(schedule: DynamicSchedule, slots: int) -> int:
    """The smallest pairwise overlap across the first *slots* slots —
    the effective ``k`` a dynamic run actually enjoyed."""
    if slots < 1:
        raise ValueError("slots must be positive")
    return min(schedule.at(slot).min_pairwise_overlap() for slot in range(slots))
