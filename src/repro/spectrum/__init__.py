"""Spatial primary-user spectrum model — the layer below the paper's model.

Derives per-node channel availability from simulated primary
transmitters (TV whitespace style), turning the paper's abstract
``(n, c, k)`` inputs into emergent, measured quantities.
"""

from repro.spectrum.model import (
    PrimaryUser,
    SecondaryNode,
    SpectrumWorld,
    churning_schedule,
    min_overlap_over,
    random_world,
)

__all__ = [
    "PrimaryUser",
    "SecondaryNode",
    "SpectrumWorld",
    "churning_schedule",
    "min_overlap_over",
    "random_world",
]
