"""Conformance checking for user-written protocols.

Downstream users extending the library with their own node algorithms
face the same pitfalls the built-in protocols navigate: out-of-range
labels, acting after termination, state that drifts from the slot
clock.  :func:`check_protocol_contract` drives a candidate protocol
factory through a short adversarial simulation and verifies the
engine-facing contract; it is what the library's own protocols are run
through in the test suite, exported so user test suites can do the
same.

Checked properties:

1. every ``begin_slot`` returns a valid :class:`~repro.sim.actions.Action`
   with a label inside ``0..c-1``;
2. the protocol never acts after reporting ``done``;
3. the protocol tolerates every outcome shape the engine can produce
   (silence, reception, success, failure, jamming) without raising;
4. slot numbers are observed strictly increasing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.assignment import shared_core
from repro.sim.actions import Broadcast, Idle, Listen
from repro.sim.adversary import RandomJammer
from repro.sim.channels import Network
from repro.sim.engine import Engine, make_views
from repro.sim.protocol import NodeView, Protocol
from repro.sim.rng import derive_rng
from repro.types import ReproError


class ProtocolContractError(ReproError):
    """A protocol violated the engine-facing contract."""


@dataclass
class _Monitor(Protocol):
    """Wraps a protocol and asserts the contract around every call."""

    inner: Protocol
    num_channels: int
    last_slot: int = -1
    acted_while_done: bool = False

    def begin_slot(self, slot: int):
        if self.inner.done:
            self.acted_while_done = True
            raise ProtocolContractError("engine called begin_slot while done")
        if slot <= self.last_slot:
            raise ProtocolContractError(
                f"slots not strictly increasing: {slot} after {self.last_slot}"
            )
        self.last_slot = slot
        action = self.inner.begin_slot(slot)
        if not isinstance(action, (Broadcast, Listen, Idle)):
            raise ProtocolContractError(
                f"begin_slot returned {type(action).__name__}, not an Action"
            )
        if isinstance(action, (Broadcast, Listen)):
            if not 0 <= action.label < self.num_channels:
                raise ProtocolContractError(
                    f"label {action.label} outside 0..{self.num_channels - 1}"
                )
        return action

    def end_slot(self, slot: int, outcome):
        self.inner.end_slot(slot, outcome)

    @property
    def done(self) -> bool:
        return self.inner.done


def check_protocol_contract(
    factory: Callable[[NodeView], Protocol],
    *,
    n: int = 8,
    c: int = 4,
    k: int = 2,
    slots: int = 120,
    seed: int = 0,
    with_jamming: bool = True,
) -> None:
    """Drive *factory*'s protocols through an adversarial run.

    Raises :class:`ProtocolContractError` (or whatever the protocol
    itself raises) on violation; returns ``None`` when the contract
    holds for the whole run.

    The run uses a shuffled shared-core network and, by default, a
    light random jammer so protocols see ``jammed`` outcomes too.
    """
    rng = derive_rng(seed, "contract-assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    views = make_views(network, seed)
    monitors = [
        _Monitor(inner=factory(view), num_channels=c) for view in views
    ]
    jammer = None
    if with_jamming:
        jammer = RandomJammer(
            sorted(assignment.universe), 1, derive_rng(seed, "contract-jam")
        )
    engine = Engine(network, monitors, seed=seed, jammer=jammer)
    engine.run(slots)


def run_protocol_matrix(
    factory: Callable[[NodeView], Protocol],
    shapes: Sequence[tuple[int, int, int]] = ((2, 1, 1), (8, 4, 2), (4, 8, 3)),
    *,
    slots: int = 80,
    seed: int = 0,
) -> None:
    """Contract-check *factory* across several (n, c, k) shapes."""
    for n, c, k in shapes:
        check_protocol_contract(
            factory, n=n, c=c, k=k, slots=slots, seed=seed, with_jamming=True
        )
