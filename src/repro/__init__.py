"""repro — a full reproduction of *Efficient Communication in Cognitive
Radio Networks* (Gilbert, Kuhn, Newport, Zheng; PODC 2015).

The package implements the paper's model and both of its algorithms,
the baselines it compares against, the lower-bound games its proofs are
built on, and an experiment harness that regenerates every quantitative
claim as a table.

Quickstart::

    import random
    from repro import assignment, core, sim

    rng = random.Random(7)
    network = sim.Network.static(
        assignment.shared_core(n=32, c=8, k=2, rng=rng).shuffled_labels(rng)
    )
    result = core.run_local_broadcast(network, source=0, seed=7, max_slots=10_000)
    print(f"broadcast completed in {result.slots} slots")

Subpackages
-----------
- :mod:`repro.sim` — slot-synchronous simulator (the model of Section 2)
- :mod:`repro.assignment` — channel-assignment generators
- :mod:`repro.core` — COGCAST and COGCOMP
- :mod:`repro.baselines` — rendezvous broadcast/aggregation, hopping-together
- :mod:`repro.games` — the bipartite hitting games and the Lemma 12 reduction
- :mod:`repro.backoff` — the decay-backoff substrate behind the collision model
- :mod:`repro.analysis` — bounds, statistics, scaling fits
- :mod:`repro.experiments` — the per-claim experiment registry
"""

from repro import (
    analysis,
    apps,
    assignment,
    backoff,
    baselines,
    core,
    games,
    sim,
    spectrum,
)
from repro.types import (
    Channel,
    GameError,
    InvalidAssignmentError,
    LocalLabel,
    NodeId,
    ProtocolViolationError,
    ReproError,
    SimulationError,
    Slot,
)

__version__ = "1.0.0"

__all__ = [
    "Channel",
    "GameError",
    "InvalidAssignmentError",
    "LocalLabel",
    "NodeId",
    "ProtocolViolationError",
    "ReproError",
    "SimulationError",
    "Slot",
    "analysis",
    "apps",
    "assignment",
    "backoff",
    "baselines",
    "core",
    "games",
    "sim",
    "spectrum",
    "__version__",
]
