"""Command-line entry point: list and run the reproduction experiments.

Usage::

    repro-experiments list
    repro-experiments run E01 [--trials N] [--seed S] [--fast] [--jobs N] [--telemetry F]
    repro-experiments run all [--trials N] [--seed S] [--fast] [--jobs N] [--telemetry F]
    repro-experiments lint [paths ...] [--format json] [--select R4,R6]
    repro-experiments obs validate|summary|tail|anomalies telemetry.jsonl [...]
    repro-experiments obs diff A.jsonl B.jsonl
    repro-experiments obs export-trace --protocol cogcomp -o trace.json
    repro-experiments bench check [CANDIDATE.json] --history 'BENCH_*.json'
    repro-experiments sanitize E01 [--fast] [--checks hashseed,jobs,backend]

(Equivalently ``python -m repro ...``.  ``lint`` is also installed as
the standalone ``repro-lint`` console script (see :mod:`repro.lint`)
and ``obs`` as ``repro-obs`` (see :mod:`repro.obs`).  ``--telemetry``
appends one JSONL manifest per experiment to the given file.)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments.registry import get, load_all


def _version_string() -> str:
    """Version plus which engine backends this environment can run."""
    from repro import __version__
    from repro.sim.backends import available_backends

    described = ", ".join(
        name if reason is None else f"{name} (unavailable: {reason})"
        for name, reason in available_backends().items()
    )
    return f"repro {__version__} — backends: {described}"


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse CLI (list / run / report subcommands)."""
    from repro.sim.backends import BACKEND_NAMES

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduction experiments for 'Efficient Communication in "
            "Cognitive Radio Networks' (PODC 2015)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=_version_string(),
        help="print the version and available engine backends",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list all experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment or 'all'")
    run_parser.add_argument("experiment", help="experiment id (e.g. E01) or 'all'")
    run_parser.add_argument("--trials", type=int, default=None, help="trials per row")
    run_parser.add_argument("--seed", type=int, default=0, help="root seed")
    run_parser.add_argument(
        "--fast", action="store_true", help="shrunken sweeps (CI-sized)"
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for trial loops (0 = all cores); results "
        "are identical to --jobs 1",
    )
    run_parser.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE",
        help="append one JSONL manifest per experiment to FILE",
    )
    run_parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="engine backend for all runs (default: exact); 'vector' "
        "needs numpy and transparently falls back per run when a "
        "configuration has no columnar form",
    )

    report_parser = subparsers.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report_parser.add_argument(
        "--output", default="experiments_report.md", help="report file path"
    )
    report_parser.add_argument("--trials", type=int, default=None)
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument("--fast", action="store_true")
    report_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for trial loops (0 = all cores); results "
        "are identical to --jobs 1",
    )
    report_parser.add_argument(
        "--telemetry", default=None, metavar="FILE",
        help="append one JSONL manifest per experiment to FILE",
    )
    report_parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="engine backend for all runs (default: exact)",
    )

    obs_parser = subparsers.add_parser(
        "obs", help="inspect telemetry files / export causal traces"
    )
    from repro.obs.cli import add_subcommands as add_obs_subcommands

    add_obs_subcommands(obs_parser.add_subparsers(dest="obs_command", required=True))

    bench_parser = subparsers.add_parser(
        "bench", help="benchmark-trajectory tools (regression gating)"
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)
    check = bench_sub.add_parser(
        "check",
        help="fit per-benchmark baselines from BENCH history; "
        "exit 1 on CI-backed regression",
    )
    check.add_argument(
        "candidate",
        nargs="?",
        default=None,
        help="candidate datapoint (default: newest history datapoint)",
    )
    check.add_argument(
        "--history",
        action="append",
        default=None,
        metavar="GLOB",
        help="history datapoint files/globs (default: BENCH_*.json); repeatable",
    )
    check.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed slowdown beyond the baseline CI (default: 0.25 = 25%%)",
    )
    check.add_argument(
        "--min-history",
        type=int,
        default=3,
        help="comparable datapoints needed to gate; fewer = warn-only",
    )
    check.add_argument(
        "--report", default=None, metavar="FILE", help="write the JSON report to FILE"
    )
    check.add_argument(
        "--json", action="store_true", help="print the JSON report instead of text"
    )

    sanitize_parser = subparsers.add_parser(
        "sanitize",
        help="dual-run determinism sanitizer: perturb hashseed/jobs/"
        "backend and bit-diff the captured tables and telemetry",
    )
    from repro.sanitize import add_arguments as add_sanitize_arguments

    add_sanitize_arguments(sanitize_parser)

    lint_parser = subparsers.add_parser(
        "lint", help="check sources against the model-soundness rules"
    )
    lint_parser.add_argument(
        "paths", nargs="*", help="files or directories (default: src/repro)"
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    lint_parser.add_argument("--select", default=None, metavar="RULES")
    lint_parser.add_argument("--ignore", default=None, metavar="RULES")
    lint_parser.add_argument("--baseline", default=None, metavar="FILE")
    lint_parser.add_argument("--update-baseline", action="store_true")
    lint_parser.add_argument("--prune-baseline", action="store_true")
    lint_parser.add_argument("--list-rules", action="store_true")
    lint_parser.add_argument("--explain", default=None, metavar="RULE")
    lint_parser.add_argument("--root", default="src/repro", metavar="PATH")
    return parser


def _run_one(
    experiment_id: str,
    trials: int | None,
    seed: int,
    fast: bool,
    telemetry: object | None = None,
) -> None:
    spec = get(experiment_id)
    start = time.perf_counter()
    if telemetry is not None:
        from repro.experiments.harness import run_with_telemetry
        from repro.obs.metrics import MetricsRegistry, ResourceSampler

        registry = MetricsRegistry()
        registry.counter(
            "experiments_run", "experiments executed", labels=("experiment",)
        ).inc(experiment=experiment_id)
        table = run_with_telemetry(
            spec,
            telemetry,
            trials=trials,
            seed=seed,
            fast=fast,
            metrics=registry,
            resources=ResourceSampler().start(),
        )
    else:
        kwargs: dict[str, object] = {"seed": seed, "fast": fast}
        if trials is not None:
            kwargs["trials"] = trials
        table = spec.run(**kwargs)
    elapsed = time.perf_counter() - start
    print(table.render())
    print(f"[{experiment_id} finished in {elapsed:.1f}s]\n")


def _open_sink(path: str | None) -> object | None:
    """A :class:`repro.obs.telemetry.TelemetrySink` for *path*, if given."""
    if path is None:
        return None
    from repro.obs.telemetry import TelemetrySink

    return TelemetrySink(path)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, spec in load_all().items():
            print(f"{experiment_id}  {spec.title}")
            print(f"      {spec.claim}")
        return 0
    if args.command in ("run", "report") and args.jobs != 1:
        from repro.perf import set_default_jobs

        set_default_jobs(args.jobs)
    if args.command in ("run", "report") and args.backend is not None:
        from repro.sim.backends import set_default_backend

        set_default_backend(args.backend)
    if args.command == "run":
        sink = _open_sink(args.telemetry)
        try:
            if args.experiment.lower() == "all":
                for experiment_id in load_all():
                    _run_one(experiment_id, args.trials, args.seed, args.fast, sink)
            else:
                _run_one(
                    args.experiment.upper(), args.trials, args.seed, args.fast, sink
                )
        finally:
            if sink is not None:
                sink.close()  # type: ignore[attr-defined]
        return 0
    if args.command == "report":
        sink = _open_sink(args.telemetry)
        try:
            write_report(
                args.output,
                trials=args.trials,
                seed=args.seed,
                fast=args.fast,
                telemetry=sink,
            )
        finally:
            if sink is not None:
                sink.close()  # type: ignore[attr-defined]
        print(f"wrote {args.output}")
        return 0
    if args.command == "lint":
        from repro.lint import cli as lint_cli

        if args.list_rules:
            return lint_cli.list_rules()
        if args.explain is not None:
            return lint_cli.explain(args.explain)
        if args.paths and args.paths[0] == "effects":
            if len(args.paths) != 2:
                print(
                    "usage: repro lint effects MODULE:FUNC [--root PATH]",
                    file=sys.stderr,
                )
                return 2
            return lint_cli.effects_command(args.paths[1], root=args.root)
        return lint_cli.run(
            args.paths,
            output_format=args.format,
            select=args.select,
            ignore=args.ignore,
            baseline=args.baseline,
            update_baseline=args.update_baseline,
            prune_baseline=args.prune_baseline,
        )
    if args.command == "sanitize":
        from repro.sanitize import dispatch as sanitize_dispatch

        return sanitize_dispatch(args)
    if args.command == "obs":
        from repro.obs import cli as obs_cli

        return obs_cli.dispatch(args)
    if args.command == "bench":
        from repro.obs.regress import bench_check

        return bench_check(
            args.candidate,
            args.history if args.history else ["BENCH_*.json"],
            threshold=args.threshold,
            min_history=args.min_history,
            report_path=args.report,
            as_json=args.json,
        )
    return 2


def write_report(
    path: str,
    *,
    trials: int | None = None,
    seed: int = 0,
    fast: bool = False,
    telemetry: object | None = None,
) -> None:
    """Run every registered experiment and write one markdown report.

    The report records the exact invocation so any table can be
    regenerated in isolation.  When *telemetry* (a
    :class:`repro.obs.telemetry.TelemetrySink`) is given, each
    experiment also emits one manifest record.
    """
    sections: list[str] = [
        "# Reproduction report",
        "",
        f"Generated by `repro-experiments report` (seed={seed}, "
        f"trials={'default' if trials is None else trials}, fast={fast}).",
        "",
    ]
    for experiment_id, spec in load_all().items():
        start = time.perf_counter()
        if telemetry is not None:
            from repro.experiments.harness import run_with_telemetry

            table = run_with_telemetry(
                spec, telemetry, trials=trials, seed=seed, fast=fast
            )
        else:
            kwargs: dict[str, object] = {"seed": seed, "fast": fast}
            if trials is not None:
                kwargs["trials"] = trials
            table = spec.run(**kwargs)
        elapsed = time.perf_counter() - start
        sections.append(f"## {experiment_id} — {spec.title}")
        sections.append("")
        sections.append(f"Claim: {spec.claim}.")
        sections.append("")
        sections.append("```")
        sections.append(table.render().rstrip())
        sections.append("```")
        sections.append("")
        sections.append(f"_Runtime: {elapsed:.1f}s._")
        sections.append("")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(sections))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
