"""E26 — COGCAST on spatially derived availability (the intro's scenario).

The paper's introduction motivates the model with TV-whitespace
deployments; its theorems take ``(n, c, k)`` as given.  This experiment
closes the loop: sample spatial worlds (primaries with protection
radii, a clustered secondary fleet), *derive* each node's channel set,
*measure* the emergent overlap ``k``, and check COGCAST's completion
time against the Theorem 4 budget computed at that measured ``k``.

Sweeping primary density moves the worlds from nearly-open spectrum
(high emergent k) to heavily encumbered (low k); the reproduction holds
when completion stays within the budget at every density.
"""

from __future__ import annotations

from repro.analysis.theory import cogcast_slot_bound
from repro.core import run_local_broadcast
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import Network
from repro.sim.rng import derive_rng
from repro.spectrum import random_world


def measure_world(num_primaries: int, seed: int) -> dict[str, float]:
    """Derive one spatial world; run COGCAST against its measured-k budget."""
    rng = derive_rng(seed, "world")
    world = random_world(
        num_channels=24,
        num_primaries=num_primaries,
        num_secondaries=16,
        area=100.0,
        primary_radius=30.0,
        rng=rng,
        cluster_radius=25.0,
    )
    assignment = world.to_assignment().shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    n = assignment.num_nodes
    c = assignment.channels_per_node
    k = assignment.overlap
    budget = cogcast_slot_bound(n, c, k)
    result = run_local_broadcast(
        network, seed=seed, max_slots=budget, require_completion=False
    )
    return {
        "c": c,
        "k": k,
        "slots": result.slots if result.completed else float(budget),
        "budget": budget,
        "completed": 1.0 if result.completed else 0.0,
    }


@register(
    "E26",
    "COGCAST on whitespace-derived channel sets",
    "Intro scenario: availability emerging from primary-user geography "
    "still satisfies Theorem 4 at the *measured* overlap k",
)
def run(trials: int = 15, seed: int = 0, fast: bool = False) -> Table:
    densities = [4, 16] if fast else [2, 6, 12, 20]
    trials = min(trials, 5) if fast else trials

    rows = []
    for num_primaries in densities:
        samples = []
        for trial_seed in trial_seeds(seed, f"E26-{num_primaries}", trials):
            try:
                samples.append(measure_world(num_primaries, trial_seed))
            except Exception:
                # A draw can produce a disconnected world (k = 0); the
                # model excludes those, so the experiment redraws by
                # skipping — the count below records viability.
                continue
        if not samples:
            rows.append((num_primaries, 0, "-", "-", "-", "-", 0.0))
            continue
        rows.append(
            (
                num_primaries,
                len(samples),
                round(mean([s["c"] for s in samples]), 1),
                round(mean([s["k"] for s in samples]), 1),
                round(mean([s["slots"] for s in samples]), 1),
                round(mean([s["budget"] for s in samples]), 1),
                round(mean([s["completed"] for s in samples]), 2),
            )
        )
    return Table(
        experiment_id="E26",
        title="COGCAST on spatial whitespace worlds (primary-density sweep)",
        claim="derived worlds complete within the Theorem 4 budget at the "
        "measured k",
        columns=(
            "primaries",
            "viable worlds",
            "mean c",
            "mean k",
            "mean slots",
            "mean budget",
            "P(within budget)",
        ),
        rows=tuple(rows),
        notes=(
            "c and k both shrink as the band gets encumbered; completion "
            "within budget holding across the sweep closes the loop from "
            "the paper's motivating scenario to its theorem"
        ),
    )
