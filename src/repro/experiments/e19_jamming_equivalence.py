"""E19 — Theorem 18's model transform, executed from both sides.

Theorem 18 proves: an algorithm solving local broadcast in a *dynamic*
CRN with local labels also solves broadcast under an n-uniform jammer,
because jamming ``k'`` channels at a node just shrinks its available
set that slot (pairwise overlap stays ``>= c - 2k'``).

We execute both sides on the same jamming process:

- **oblivious side**: COGCAST hops over all ``c`` channels while the
  engine-level jammer silences ``k'`` per node per slot;
- **reduction side**: the jammer is folded into a dynamic
  :class:`~repro.sim.channels.DynamicSchedule` whose slot-``t``
  assignment is exactly the unjammed channels, and COGCAST runs on
  that network (hopping over ``c - k'`` channels).

Both must complete; the reduction side is moderately faster because it
never wastes a slot on a jammed channel — quantifying what the
"sensing" assumption inside the reduction buys.
"""

from __future__ import annotations

from repro.assignment import effective_overlap, identical, random_jam_schedule
from repro.core import run_local_broadcast
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import Network, RandomJammer
from repro.sim.rng import derive_rng


def measure_oblivious(n: int, c: int, budget: int, seed: int) -> int:
    """Completion slots with the jammer applied at the engine level."""
    assignment = identical(n, c)
    rng = derive_rng(seed, "labels")
    network = Network.static(assignment.shuffled_labels(rng), validate=False)
    jammer = (
        RandomJammer(sorted(assignment.universe), budget, derive_rng(seed, "jam"))
        if budget
        else None
    )
    result = run_local_broadcast(
        network,
        seed=seed,
        max_slots=200_000,
        jammer=jammer,
        require_completion=True,
    )
    return result.slots


def measure_reduction(n: int, c: int, budget: int, seed: int) -> int:
    """Completion slots with the jammer folded into a dynamic schedule."""
    if budget == 0:
        return measure_oblivious(n, c, 0, seed)
    schedule = random_jam_schedule(c, n, budget, seed)
    network = Network(schedule)
    result = run_local_broadcast(
        network, seed=seed, max_slots=200_000, require_completion=True
    )
    return result.slots


@register(
    "E19",
    "Theorem 18 from both sides: oblivious jamming vs dynamic schedule",
    "Theorem 18: jamming k' < c/2 channels per node equals a dynamic "
    "CRN with overlap c - 2k'; broadcast succeeds either way",
)
def run(trials: int = 15, seed: int = 0, fast: bool = False) -> Table:
    n, c = 24, 12
    budgets = [0, 3] if fast else [0, 2, 3, 4, 5]
    trials = min(trials, 5) if fast else trials

    rows = []
    for budget in budgets:
        seeds = trial_seeds(seed, f"E19-{budget}", trials)
        oblivious = mean([measure_oblivious(n, c, budget, s) for s in seeds])
        reduction = mean([measure_reduction(n, c, budget, s) for s in seeds])
        rows.append(
            (
                n,
                c,
                budget,
                effective_overlap(c, budget),
                round(oblivious, 1),
                round(reduction, 1),
                round(oblivious / reduction, 2),
            )
        )
    return Table(
        experiment_id="E19",
        title="Jammed broadcast: oblivious vs reduction view",
        claim="both sides complete for every k' < c/2, degrading smoothly",
        columns=(
            "n",
            "c",
            "jam k'",
            "c - 2k'",
            "oblivious slots",
            "schedule slots",
            "obl/sched",
        ),
        rows=tuple(rows),
        notes=(
            "the reduction side ('sensing' the jam) is mildly faster; "
            "completion on both sides for all k' < c/2 is the theorem's "
            "content"
        ),
    )
