"""E08 — the c-complete bipartite hitting game lower bound (Lemma 14).

Against a hidden uniform *perfect* matching, no player wins within
``c/3`` rounds with probability 1/2.  (The bound looks loose — a fresh
proposal hits with probability ``~1/c``, so the true median is near
``0.7c`` — and the experiment shows exactly that slack.)
"""

from __future__ import annotations

from repro.analysis.theory import complete_hitting_lower_bound
from repro.experiments.harness import Table, median, trial_seeds
from repro.experiments.registry import register
from repro.games import (
    DiagonalPlayer,
    ExhaustivePlayer,
    UniformRandomPlayer,
    complete_hitting_game,
    play,
)
from repro.sim.rng import derive_rng


def _median_rounds(c: int, player_name: str, seeds: list[int]) -> float:
    rounds: list[int] = []
    for seed in seeds:
        game = complete_hitting_game(c, derive_rng(seed, "referee"))
        player_rng = derive_rng(seed, "player")
        if player_name == "uniform":
            player = UniformRandomPlayer(c, player_rng)
        elif player_name == "exhaustive":
            player = ExhaustivePlayer(c, player_rng)
        else:
            player = DiagonalPlayer(c)
        won_in = play(game, player, max_rounds=100 * c * c)
        if won_in is None:
            raise RuntimeError("player failed to win within a huge budget")
        rounds.append(won_in)
    return median(rounds)


@register(
    "E08",
    "c-complete bipartite hitting: no player beats c/3",
    "Lemma 14: winning the c-complete game within c/3 rounds has "
    "probability < 1/2",
)
def run(trials: int = 50, seed: int = 0, fast: bool = False) -> Table:
    cs = [8, 32] if fast else [8, 16, 32, 64, 128]
    trials = min(trials, 15) if fast else trials

    rows = []
    for c in cs:
        seeds = trial_seeds(seed, f"E08-{c}", trials)
        bound = complete_hitting_lower_bound(c)
        medians = {
            name: _median_rounds(c, name, seeds)
            for name in ("uniform", "exhaustive", "diagonal")
        }
        best = min(medians.values())
        rows.append(
            (
                c,
                round(bound, 1),
                round(medians["uniform"], 1),
                round(medians["exhaustive"], 1),
                round(medians["diagonal"], 1),
                best >= bound,
            )
        )
    return Table(
        experiment_id="E08",
        title="c-complete hitting medians vs Lemma 14 bound",
        claim="Lemma 14: median win round >= c/3 for every player",
        columns=(
            "c",
            "bound c/3",
            "uniform p50",
            "exhaustive p50",
            "diagonal p50",
            "bound holds",
        ),
        rows=tuple(rows),
    )
