"""E11 — the Section 6 discussion: hopping-together beats COGCAST when c >> n.

On the instance ``c = n^2, k = c - 1`` (all pairs share the same ``k``
channels, global labels), a lockstep sequential scan finishes in
``O(C/k) = O(1)`` expected slots while COGCAST needs
``Theta((c^2/(nk)) lg n) = Theta(n lg n)``.  This is the paper's own
evidence that the ``c >= n`` gap between Theorem 4 and Theorem 16 is
real — under *global* labels a smarter algorithm exists.
"""

from __future__ import annotations

from repro.analysis.theory import hopping_together_expected_slots, lg
from repro.assignment import hopping_discussion_instance
from repro.baselines import run_hopping_together
from repro.core import run_local_broadcast
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import Network
from repro.sim.rng import derive_rng


def measure_pair(n: int, seed: int) -> tuple[int, int]:
    """(hopping slots, cogcast slots) on the same discussion instance."""
    rng = derive_rng(seed, "assignment")
    assignment = hopping_discussion_instance(n, rng).with_global_labels()
    hopping = run_hopping_together(assignment, source=0, seed=seed, max_slots=500_000)
    if not hopping.completed:
        raise RuntimeError("hopping-together did not complete")
    # COGCAST does not benefit from global labels; run it on the same
    # physical instance with randomized local labels.
    local_rng = derive_rng(seed, "labels")
    network = Network.static(assignment.shuffled_labels(local_rng), validate=False)
    cogcast = run_local_broadcast(
        network, source=0, seed=seed, max_slots=2_000_000, require_completion=True
    )
    return hopping.slots, cogcast.slots


@register(
    "E11",
    "Hopping-together vs COGCAST on the c = n^2, k = c-1 instance",
    "Section 6 discussion: with global labels and c >> n, lockstep "
    "scanning solves broadcast in O(1) expected slots while COGCAST "
    "needs Theta(n lg n)",
)
def run(trials: int = 10, seed: int = 0, fast: bool = False) -> Table:
    ns = [4, 6] if fast else [4, 6, 8, 10]
    trials = min(trials, 3) if fast else trials

    rows = []
    for n in ns:
        c = n * n
        k = c - 1
        universe = k + n * (c - k)
        seeds = trial_seeds(seed, f"E11-{n}", trials)
        pairs = [measure_pair(n, s) for s in seeds]
        hop_mean = mean([hop for hop, _ in pairs])
        cog_mean = mean([cog for _, cog in pairs])
        rows.append(
            (
                n,
                c,
                k,
                round(hopping_together_expected_slots(universe, k), 2),
                round(hop_mean, 1),
                round(n * lg(n), 1),
                round(cog_mean, 1),
                round(cog_mean / max(1.0, hop_mean), 1),
            )
        )
    return Table(
        experiment_id="E11",
        title="Hopping-together vs COGCAST (c >> n, global labels)",
        claim="Section 6: hopping wins by a growing factor as n grows",
        columns=(
            "n",
            "c",
            "k",
            "C/k",
            "hopping mean",
            "n lg n",
            "cogcast mean",
            "cogcast/hopping",
        ),
        rows=tuple(rows),
        notes=(
            "hopping's mean should hug the O(1)-ish C/k column while "
            "COGCAST tracks n lg n — the paper's promised crossover"
        ),
    )
