"""E21 — the determinism trade-off (Section 1 and footnote 1).

"The best [deterministic] solutions achieve an O(c^2) bound.  It is
straightforward to show that basic uniform randomized channel hopping
would improve this bound to O(c^2/k) (which is better for non-constant
k)."

We race a guaranteed deterministic stay-and-scan rendezvous (flat
``Theta(c^2)``) against uniform random hopping (mean ``c^2/k``) across
``k``: determinism never fails but never improves with overlap;
randomization cuts the cost by a factor ``k``, with its tail fully
quantified by the p95 column (footnote 1's "error bounds can be easily
tuned" point).
"""

from __future__ import annotations

from repro.analysis.stats import percentile
from repro.analysis.theory import rendezvous_expected_slots
from repro.baselines import pairwise_rendezvous_slots
from repro.baselines.deterministic import stay_and_scan_pairwise
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim.rng import derive_rng


@register(
    "E21",
    "Deterministic O(c^2) vs randomized O(c^2/k) rendezvous",
    "Section 1: uniform random hopping beats deterministic schedules by "
    "a factor k; determinism's only edge is zero failure probability",
)
def run(trials: int = 100, seed: int = 0, fast: bool = False) -> Table:
    c = 16
    ks = [1, 8] if fast else [1, 2, 4, 8, 16]
    trials = min(trials, 30) if fast else trials

    rows = []
    for k in ks:
        seeds = trial_seeds(seed, f"E21-{k}", trials)
        deterministic = [
            stay_and_scan_pairwise(c, k, derive_rng(s, "det")) for s in seeds
        ]
        randomized = [
            pairwise_rendezvous_slots(c, k, derive_rng(s, "rand")) for s in seeds
        ]
        rows.append(
            (
                c,
                k,
                round(rendezvous_expected_slots(c, k), 1),
                round(mean(randomized), 1),
                round(percentile(sorted(float(x) for x in randomized), 0.95), 1),
                round(mean(deterministic), 1),
                max(deterministic),
                c * c,
            )
        )
    return Table(
        experiment_id="E21",
        title="Pairwise rendezvous: randomized vs deterministic",
        claim="randomized mean tracks c^2/k exactly; randomized tails "
        "(p95) undercut the deterministic c^2 guarantee once k is "
        "non-constant",
        columns=(
            "c",
            "k",
            "c^2/k",
            "rand mean",
            "rand p95",
            "det mean",
            "det max",
            "c^2 guarantee",
        ),
        rows=tuple(rows),
        notes=(
            "det max never exceeds the c^2 guarantee (determinism's zero "
            "failure probability); the §1 comparison is bounds vs bounds: "
            "rand p95 ~ 3c^2/k beats the flat c^2 guarantee for k >= 4. "
            "Caveat: with synchronized starts the deterministic *average* "
            "also benefits from overlap — the guarantee column, not the "
            "mean, is what O(c^2) describes"
        ),
    )
