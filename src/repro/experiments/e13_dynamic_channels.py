"""E13 — COGCAST under dynamic channel assignments.

Section 4's discussion (and Theorem 17's setting): COGCAST's analysis
never uses that the assignment is static — as long as each slot's
assignment keeps every pair overlapping on ``k`` channels, the epidemic
argument goes through unchanged.  We re-randomize the entire assignment
*every slot* and compare completion times against the static case at
the same ``(n, c, k)``.
"""

from __future__ import annotations

from repro.assignment import dynamic_shared_core_schedule, shared_core
from repro.core import run_local_broadcast
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import Network
from repro.sim.rng import derive_rng


def measure_dynamic(n: int, c: int, k: int, seed: int) -> int:
    """Completion slots with the assignment re-randomized every slot."""
    schedule = dynamic_shared_core_schedule(n, c, k, seed)
    network = Network(schedule)
    result = run_local_broadcast(
        network, source=0, seed=seed, max_slots=1_000_000, require_completion=True
    )
    return result.slots


def measure_static(n: int, c: int, k: int, seed: int) -> int:
    """Completion slots on a fixed shared-core assignment (the control)."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    result = run_local_broadcast(
        network, source=0, seed=seed, max_slots=1_000_000, require_completion=True
    )
    return result.slots


@register(
    "E13",
    "COGCAST with per-slot re-randomized assignments",
    "Section 4 discussion: COGCAST provides the same guarantee under "
    "dynamic assignments (Theorem 4's proof is slot-local)",
)
def run(trials: int = 15, seed: int = 0, fast: bool = False) -> Table:
    settings = [(32, 8, 2)] if fast else [(32, 8, 2), (64, 16, 4), (16, 32, 8)]
    trials = min(trials, 5) if fast else trials

    rows = []
    for n, c, k in settings:
        seeds = trial_seeds(seed, f"E13-{n}-{c}-{k}", trials)
        static = mean([measure_static(n, c, k, s) for s in seeds])
        dynamic = mean([measure_dynamic(n, c, k, s) for s in seeds])
        rows.append(
            (
                n,
                c,
                k,
                round(static, 1),
                round(dynamic, 1),
                round(dynamic / static, 2),
            )
        )
    return Table(
        experiment_id="E13",
        title="COGCAST: static vs fully dynamic assignments",
        claim="same completion-time order whether channels are stable or "
        "re-drawn every slot",
        columns=("n", "c", "k", "static mean", "dynamic mean", "dyn/static"),
        rows=tuple(rows),
        notes=(
            "dyn/static near 1 reproduces the robustness claim; no "
            "schedule-based algorithm survives this adversary (Theorem 17)"
        ),
    )
