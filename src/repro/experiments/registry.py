"""Registry of all experiments, keyed by experiment id (E01..E16).

Experiment modules self-register at import time via :func:`register`;
:func:`load_all` imports the whole suite.  DESIGN.md section 5 is the
authoritative map from paper claim to experiment id.
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.experiments.harness import ExperimentSpec, Table

_REGISTRY: dict[str, ExperimentSpec] = {}

_MODULES = [
    "repro.experiments.e01_cogcast_scaling_n",
    "repro.experiments.e02_cogcast_large_c",
    "repro.experiments.e03_cogcast_k_sweep",
    "repro.experiments.e04_broadcast_head_to_head",
    "repro.experiments.e05_cogcomp_scaling",
    "repro.experiments.e06_aggregation_head_to_head",
    "repro.experiments.e07_bipartite_hitting",
    "repro.experiments.e08_complete_hitting",
    "repro.experiments.e09_reduction",
    "repro.experiments.e10_global_label_bound",
    "repro.experiments.e11_hopping_vs_cogcast",
    "repro.experiments.e12_overlap_patterns",
    "repro.experiments.e13_dynamic_channels",
    "repro.experiments.e14_jamming",
    "repro.experiments.e15_aggregation_bound",
    "repro.experiments.e16_decay_backoff",
    "repro.experiments.e17_fault_tolerance",
    "repro.experiments.e18_message_overhead",
    "repro.experiments.e19_jamming_equivalence",
    "repro.experiments.e20_seeded_rendezvous",
    "repro.experiments.e21_determinism_tradeoff",
    "repro.experiments.e22_adversarial_search",
    "repro.experiments.e23_stack_composition",
    "repro.experiments.e24_collision_ablation",
    "repro.experiments.e25_epidemic_stages",
    "repro.experiments.e26_whitespace_worlds",
    "repro.experiments.e27_gossip_scaling",
    "repro.experiments.e28_staggered_activation",
    "repro.experiments.e29_tree_shape",
]


def register(
    experiment_id: str, title: str, claim: str
) -> Callable[[Callable[..., Table]], Callable[..., Table]]:
    """Decorator: register ``run(trials, seed, fast) -> Table``."""

    def decorator(run: Callable[..., Table]) -> Callable[..., Table]:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id}")
        if not run.__doc__:
            run.__doc__ = f"{experiment_id} — {title}.\n\nClaim: {claim}."
        _REGISTRY[experiment_id] = ExperimentSpec(
            experiment_id=experiment_id, title=title, claim=claim, run=run
        )
        return run

    return decorator


def load_all() -> dict[str, ExperimentSpec]:
    """Import every experiment module and return the full registry."""
    for module in _MODULES:
        importlib.import_module(module)
    return dict(sorted(_REGISTRY.items()))


def get(experiment_id: str) -> ExperimentSpec:
    """Look up one experiment (loading the suite on first use)."""
    if experiment_id not in _REGISTRY:
        load_all()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None
