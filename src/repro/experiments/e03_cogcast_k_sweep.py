"""E03 — the ``c/k`` dependence: COGCAST speeds up linearly with overlap.

Theorem 4's leading factor.  Fixed ``(n, c)``, sweep ``k`` from 1 to
``c``; completion time should halve every time the overlap guarantee
doubles.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.fitting import fit_proportional
from repro.analysis.theory import lg
from repro.experiments.e01_cogcast_scaling_n import measure_cogcast_slots
from repro.experiments.harness import Table, map_trials, mean, trial_seeds
from repro.experiments.registry import register


@register(
    "E03",
    "COGCAST completion vs k",
    "Theorem 4: slots scale as c/k — doubling the overlap halves the time",
)
def run(trials: int = 20, seed: int = 0, fast: bool = False) -> Table:
    n, c = 64, 32
    ks = [2, 8, 32] if fast else [1, 2, 4, 8, 16, 32]
    trials = min(trials, 5) if fast else trials

    rows = []
    predictors: list[float] = []
    means: list[float] = []
    for k in ks:
        samples = map_trials(
            partial(measure_cogcast_slots, n, c, k),
            trial_seeds(seed, f"E03-{k}", trials),
        )
        predictor = (c / k) * lg(n)
        sample_mean = mean(samples)
        predictors.append(predictor)
        means.append(sample_mean)
        rows.append(
            (
                n,
                c,
                k,
                round(predictor, 1),
                round(sample_mean, 1),
                max(samples),
                round(sample_mean / predictor, 2),
            )
        )
    fit = fit_proportional(predictors, means)
    return Table(
        experiment_id="E03",
        title="COGCAST completion vs k",
        claim="Theorem 4: slots = O((c/k) lg n) — inverse-linear in k",
        columns=(
            "n",
            "c",
            "k",
            "(c/k)*lg n",
            "mean slots",
            "max slots",
            "slots/pred",
        ),
        rows=tuple(rows),
        notes=(
            f"proportional fit: slots ~ {fit.slope:.2f} * (c/k) lg n, "
            f"R^2 = {fit.r_squared:.3f}"
        ),
    )
