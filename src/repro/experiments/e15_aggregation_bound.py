"""E15 — the Omega(n/k) aggregation lower bound (Section 5 discussion).

"If all the nodes share the same k channels, and each channel can only
be used by one node at a time, then it takes Omega(n/k) slots for every
node to report."  We build exactly that instance (``c = k``, identical
channel sets) and check that COGCOMP's phase four — the part doing the
reporting — costs at least ``n/k`` slots, and that its total stays
within a constant factor of the bound for small ``k`` (the paper's
"near optimal for small k" remark).
"""

from __future__ import annotations

from repro.analysis.theory import aggregation_lower_bound
from repro.assignment import identical
from repro.core import SumAggregator, run_data_aggregation
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import Network
from repro.sim.rng import derive_rng


def measure_phase4(n: int, k: int, seed: int) -> tuple[int, int]:
    """(phase4 slots, total slots) on the all-share-k instance (c = k)."""
    assignment = identical(n, k)
    rng = derive_rng(seed, "labels")
    network = Network.static(assignment.shuffled_labels(rng), validate=False)
    values = [float(node) for node in range(n)]
    result = run_data_aggregation(
        network,
        values,
        source=0,
        seed=seed,
        aggregator=SumAggregator(),
        require_completion=True,
    )
    if result.value != sum(values):
        raise RuntimeError("wrong aggregate")
    return result.phase4_slots, result.total_slots


@register(
    "E15",
    "Aggregation Omega(n/k) bound on the all-share-k instance",
    "Section 5 discussion: every algorithm needs Omega(n/k) slots; "
    "COGCOMP is near optimal for k = O(1)",
)
def run(trials: int = 10, seed: int = 0, fast: bool = False) -> Table:
    settings = [(16, 1), (32, 2)] if fast else [(16, 1), (32, 1), (32, 2), (64, 2), (64, 4)]
    trials = min(trials, 3) if fast else trials

    rows = []
    for n, k in settings:
        seeds = trial_seeds(seed, f"E15-{n}-{k}", trials)
        measurements = [measure_phase4(n, k, s) for s in seeds]
        phase4 = mean([p4 for p4, _ in measurements])
        total = mean([tot for _, tot in measurements])
        bound = aggregation_lower_bound(n, k)
        rows.append(
            (
                n,
                k,
                round(bound, 1),
                round(phase4, 1),
                phase4 >= bound,
                round(total, 1),
                round(total / bound, 1),
            )
        )
    return Table(
        experiment_id="E15",
        title="COGCOMP vs the Omega(n/k) aggregation bound",
        claim="phase four alone costs >= n/k slots; total/(n/k) stays "
        "bounded for small k",
        columns=(
            "n",
            "k",
            "n/k bound",
            "phase4 mean",
            ">= bound",
            "total mean",
            "total/(n/k)",
        ),
        rows=tuple(rows),
        notes=(
            "c = k (all nodes share exactly the same k channels); the "
            "total/(n/k) column growing with k shows the paper's 'room "
            "for improvement for larger k'"
        ),
    )
