"""E17 — COGCAST under crash and outage faults (Section 1's robustness claim).

"Because nodes do the same thing in every slot, it can gracefully
handle changes to the network conditions, temporary faults, and so on."

We inject two fault classes into a broadcast:

- **outages**: a random fraction of nodes sleep through random
  intervals (radio off, then resume);
- **crashes**: a random fraction of *non-source* nodes die permanently
  at random early slots.

Success criterion: every node that is alive (and, for outage nodes,
eventually awake) still gets informed, with completion time degrading
smoothly in the fault rate rather than collapsing.
"""

from __future__ import annotations

from repro.assignment import shared_core
from repro.core import CogCast
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import (
    CrashFault,
    Engine,
    Network,
    OutageFault,
    make_views,
    with_faults,
)
from repro.sim.rng import derive_rng


def measure_faulty_broadcast(
    n: int,
    c: int,
    k: int,
    fault_fraction: float,
    fault_kind: str,
    seed: int,
    *,
    max_slots: int = 100_000,
) -> tuple[int, int, int]:
    """Run COGCAST with faults; returns (slots, informed, must_inform).

    ``must_inform`` counts the nodes the success criterion covers: all
    of them for outages (they wake up again), only the survivors for
    crashes.
    """
    if fault_kind not in ("outage", "crash"):
        raise ValueError(f"unknown fault kind {fault_kind!r}")
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    views = make_views(network, seed)
    protocols = [
        CogCast(view, is_source=(view.node_id == 0)) for view in views
    ]

    fault_rng = derive_rng(seed, "faults")
    faulty_count = int(fault_fraction * n)
    victims = fault_rng.sample(range(1, n), min(faulty_count, n - 1))
    plan = {}
    for victim in victims:
        if fault_kind == "outage":
            start = fault_rng.randrange(0, 30)
            length = fault_rng.randrange(5, 25)
            plan[victim] = [OutageFault(((start, start + length),))]
        else:
            plan[victim] = [CrashFault(crash_slot=fault_rng.randrange(2, 20))]

    wrapped = with_faults(protocols, plan)
    engine = Engine(network, wrapped, seed=seed)

    crashed = set(victims) if fault_kind == "crash" else set()
    must_inform = [node for node in range(n) if node not in crashed]

    def goal(_: Engine) -> bool:
        return all(protocols[node].informed for node in must_inform)

    result = engine.run(max_slots, stop_when=goal)
    if not result.completed:
        raise RuntimeError("faulty broadcast did not finish live nodes")
    informed = sum(protocols[node].informed for node in must_inform)
    return result.slots, informed, len(must_inform)


@register(
    "E17",
    "COGCAST fault tolerance (crashes and outages)",
    "Section 1: the stateless slot structure gracefully handles "
    "temporary faults and node failures",
)
def run(trials: int = 15, seed: int = 0, fast: bool = False) -> Table:
    n, c, k = 32, 8, 2
    fractions = [0.0, 0.25] if fast else [0.0, 0.125, 0.25, 0.5]
    trials = min(trials, 5) if fast else trials

    rows = []
    for fraction in fractions:
        outage = mean(
            [
                measure_faulty_broadcast(n, c, k, fraction, "outage", s)[0]
                for s in trial_seeds(seed, f"E17-o-{fraction}", trials)
            ]
        )
        crash = mean(
            [
                measure_faulty_broadcast(n, c, k, fraction, "crash", s)[0]
                for s in trial_seeds(seed, f"E17-c-{fraction}", trials)
            ]
        )
        rows.append(
            (
                n,
                c,
                k,
                fraction,
                round(outage, 1),
                round(crash, 1),
            )
        )
    baseline = rows[0][4]
    return Table(
        experiment_id="E17",
        title="COGCAST completion under fault injection",
        claim="live nodes always get informed; slowdown is smooth in the "
        "fault rate",
        columns=(
            "n",
            "c",
            "k",
            "fault frac",
            "outage slots",
            "crash slots",
        ),
        rows=tuple(rows),
        notes=(
            f"fault-free baseline {baseline} slots; every cell is a run in "
            "which all live nodes were informed (failures would raise)"
        ),
    )
