"""E04 — COGCAST vs the rendezvous-broadcast baseline.

Paper Section 1: the straightforward rendezvous strategy needs
``O((c^2/k) lg n)`` slots; COGCAST needs ``O((c/k) lg n)`` when
``c <= n`` — "a factor of c faster than the straightforward solution".
Sweep ``c`` with ``n, k`` fixed; the measured speedup should grow
roughly linearly in ``c``.
"""

from __future__ import annotations

from repro.baselines import run_rendezvous_broadcast
from repro.experiments.e01_cogcast_scaling_n import measure_cogcast_slots
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.assignment import shared_core
from repro.sim import Network
from repro.sim.rng import derive_rng


def measure_rendezvous_slots(n: int, c: int, k: int, seed: int) -> int:
    """Completion slots of the non-relaying baseline on the same family
    of networks E01 uses."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    result = run_rendezvous_broadcast(network, source=0, seed=seed, max_slots=2_000_000)
    if not result.completed:
        raise RuntimeError("baseline did not complete within budget")
    return result.slots


@register(
    "E04",
    "COGCAST vs rendezvous broadcast",
    "Section 1: COGCAST beats the O((c^2/k) lg n) rendezvous baseline "
    "by a factor ~c when c <= n",
)
def run(trials: int = 10, seed: int = 0, fast: bool = False) -> Table:
    n, k = 64, 2
    cs = [4, 16] if fast else [4, 8, 16, 32]
    trials = min(trials, 3) if fast else trials

    from repro.analysis import speedup_ci

    rows = []
    for c in cs:
        seeds = trial_seeds(seed, f"E04-{c}", trials)
        cogcast = [float(measure_cogcast_slots(n, c, k, s)) for s in seeds]
        baseline = [float(measure_rendezvous_slots(n, c, k, s)) for s in seeds]
        ci = speedup_ci(baseline, cogcast, seed=seed)
        rows.append(
            (
                n,
                c,
                k,
                round(mean(cogcast), 1),
                round(mean(baseline), 1),
                round(ci.estimate, 2),
                round(ci.low, 2),
                round(ci.high, 2),
                round(ci.estimate / c, 2),
            )
        )
    return Table(
        experiment_id="E04",
        title="COGCAST vs rendezvous broadcast",
        claim="Section 1: speedup grows ~linearly in c (factor-c claim)",
        columns=(
            "n",
            "c",
            "k",
            "cogcast slots",
            "rendezvous slots",
            "speedup",
            "ci95 low",
            "ci95 high",
            "speedup/c",
        ),
        rows=tuple(rows),
        notes=(
            "the paper's winner (COGCAST) should win every row with a "
            "bootstrap CI entirely above 1, and the speedup/c column "
            "roughly flat — that is the factor-c separation"
        ),
    )
