"""Campaigns: structured multi-seed measurement runs.

The per-experiment modules each hand-roll a "sweep a parameter, run N
seeded trials per point, summarize" loop.  A :class:`Campaign` packages
that pattern for users building *their own* studies on top of the
library: declare a parameter grid and a measurement function, get back
per-point summaries with confidence intervals, and render the whole
thing as a :class:`~repro.experiments.harness.Table`.

Example::

    campaign = Campaign(
        name="my-sweep",
        measure=lambda point, seed: measure_cogcast_slots(
            point["n"], point["c"], point["k"], seed
        ),
    )
    grid = [{"n": n, "c": 16, "k": 4} for n in (32, 64, 128)]
    results = campaign.run(grid, trials=20, seed=0)
    print(campaign.table(results).render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.stats import Summary, mean_confidence_interval, summarize
from repro.experiments.harness import Table
from repro.sim.rng import derive_seed


MeasureFn = Callable[[Mapping[str, Any], int], float]


def _timed_measure(
    measure: MeasureFn, point: Mapping[str, Any], seed: int
) -> tuple[float, float]:
    """One trial plus its ``perf_counter`` duration (runs in the worker).

    Module-level (not a closure) so a :func:`functools.partial` over it
    pickles whenever *measure* does; the duration is reporting only
    (lint rule R2 allows ``perf_counter``), the sample stays a pure
    function of ``(point, seed)``.
    """
    from time import perf_counter

    start = perf_counter()
    value = float(measure(point, seed))
    return value, perf_counter() - start


@dataclass(frozen=True)
class PointResult:
    """Measurements at one grid point."""

    point: Mapping[str, Any]
    samples: tuple[float, ...]
    summary: Summary
    ci_low: float
    ci_high: float


@dataclass
class Campaign:
    """A named, reproducible measurement campaign.

    Attributes
    ----------
    name:
        Used in seed derivation — two campaigns with different names
        draw independent trial streams even at the same root seed.
    measure:
        ``measure(point, seed) -> float``; must be deterministic in its
        arguments.
    """

    name: str
    measure: MeasureFn

    def run(
        self,
        grid: Sequence[Mapping[str, Any]],
        *,
        trials: int,
        seed: int = 0,
        telemetry: Any = None,
        jobs: int | None = 1,
        watchdogs: Sequence[Any] = (),
        metrics: Any = None,
        backend: str | None = None,
    ) -> list[PointResult]:
        """Measure every grid point with *trials* independent seeds.

        When *telemetry* (any object with ``emit(record)``, typically a
        :class:`repro.obs.telemetry.TelemetrySink`) is given, one
        ``kind="campaign"`` manifest is emitted per grid point as it
        completes, with the point, its trial count, the sample mean, and
        the point's ``perf_counter`` wall time.

        *watchdogs* are invariant monitors
        (:class:`repro.obs.watchdog.WatchdogProbe`) the measure function
        attached to its runs; after the grid completes, their
        accumulated anomalies are flushed to *telemetry* as
        ``kind="anomaly"`` records.  Watchdog state lives in this
        process, so combine watchdogs with ``jobs=1`` (worker processes
        cannot report back through a probe object).

        *jobs* fans the flattened ``(point, trial)`` work list across a
        process pool via :func:`repro.perf.pmap_trials`; every trial's
        seed is derived up front and results are reassembled in
        submission order, so the returned tables and confidence
        intervals are byte-identical to a serial run.  ``jobs=None``
        defers to the process default (the CLI's ``--jobs``); the
        measure function must be picklable (module-level, not a
        lambda) to actually parallelize — otherwise the run quietly
        stays in-process.  A point's ``elapsed_s`` is the sum of its
        trials' individual measure times (timed inside the worker), so
        serial and parallel runs report comparable per-point costs.

        *metrics* is an optional
        :class:`repro.obs.metrics.MetricsRegistry` maintained in the
        parent process (workers return plain samples, so parallel runs
        feed the same instruments in the same order as serial runs):
        per-campaign trial/point counters, the trial-value distribution
        (protocol category — deterministic in ``(grid, seed)``), and a
        timing-category per-point elapsed histogram.  Each
        ``kind="campaign"`` record embeds the registry snapshot as of
        that point, so shards merged by
        :func:`repro.perf.merge_telemetry` stay individually
        attributable.

        *backend* names the engine backend (``"exact"``, ``"vector"``,
        ...) the measure function's runs should use; it is installed as
        the process default for the duration of the grid (restored
        after), and :func:`repro.perf.pmap_trials` snapshots it into
        pool workers, so measure functions pick it up without a
        parameter of their own.  ``None`` leaves the current default in
        place.  The resolved backend name is recorded in each point's
        provenance block, so points measured under different backends
        hash to different store keys.
        """
        if trials < 1:
            raise ValueError("trials must be positive")
        if telemetry is not None:
            from repro.obs.telemetry import campaign_record
        from functools import partial

        from repro.perf import pmap_trials

        from repro.sim.backends import backend_scope, default_backend_name

        backend_name = backend if backend is not None else default_backend_name()
        tasks = [
            (dict(point), derive_seed(seed, "campaign", self.name, index, trial))
            for index, point in enumerate(grid)
            for trial in range(trials)
        ]
        with backend_scope(backend):
            flat = pmap_trials(
                partial(_timed_measure, self.measure), tasks, jobs=jobs
            )
        if metrics is not None:
            point_counter = metrics.counter(
                "campaign_points", "grid points measured", labels=("campaign",)
            )
            trial_counter = metrics.counter(
                "campaign_trials", "trials measured", labels=("campaign",)
            )
            value_histogram = metrics.histogram(
                "campaign_trial_value",
                "trial measurement values",
                labels=("campaign",),
            )
            elapsed_histogram = metrics.histogram(
                "campaign_point_elapsed_s",
                "per-point wall time",
                labels=("campaign",),
                category="timing",
                width=0.25,
            )
        results: list[PointResult] = []
        for index, point in enumerate(grid):
            point_trials = flat[index * trials : (index + 1) * trials]
            samples = tuple(value for value, _ in point_trials)
            elapsed = sum(trial_elapsed for _, trial_elapsed in point_trials)
            _, low, high = mean_confidence_interval(list(samples))
            summary = summarize(samples)
            if metrics is not None:
                point_counter.inc(campaign=self.name)
                trial_counter.inc(trials, campaign=self.name)
                for sample in samples:
                    value_histogram.observe(sample, campaign=self.name)
                elapsed_histogram.observe(elapsed, campaign=self.name)
            if telemetry is not None:
                telemetry.emit(
                    campaign_record(
                        name=self.name,
                        seed=seed,
                        point=point,
                        trials=trials,
                        mean=summary.mean,
                        elapsed_s=elapsed,
                        metrics=metrics,
                        backend=backend_name,
                    )
                )
            results.append(
                PointResult(
                    point=dict(point),
                    samples=samples,
                    summary=summary,
                    ci_low=low,
                    ci_high=high,
                )
            )
        if telemetry is not None and watchdogs:
            from repro.obs.watchdog import flush_anomalies

            flush_anomalies(telemetry, watchdogs, seed=seed)
        return results

    def table(
        self,
        results: Sequence[PointResult],
        *,
        title: str | None = None,
        claim: str = "",
    ) -> Table:
        """Render campaign results as a harness table.

        Columns are the union of grid-point keys (in first-seen order)
        plus the summary statistics.
        """
        if not results:
            raise ValueError("no results to tabulate")
        keys: list[str] = []
        for result in results:
            for key in result.point:
                if key not in keys:
                    keys.append(key)
        columns = tuple(keys) + ("mean", "ci95 low", "ci95 high", "p50", "max")
        rows = []
        for result in results:
            rows.append(
                tuple(result.point.get(key, "") for key in keys)
                + (
                    round(result.summary.mean, 2),
                    round(result.ci_low, 2),
                    round(result.ci_high, 2),
                    round(result.summary.p50, 2),
                    round(result.summary.maximum, 2),
                )
            )
        return Table(
            experiment_id=self.name,
            title=title or self.name,
            claim=claim,
            columns=columns,
            rows=tuple(rows),
        )
