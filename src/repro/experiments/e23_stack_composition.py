"""E23 — the full stack: COGCAST over real decay backoff (footnote 4).

E16 validated decay backoff on one channel in isolation; this
experiment composes the layers: COGCAST runs with every contended
channel resolved by *actually simulating* the decay protocol inside a
fixed ``W = 4·lg²n`` micro-slot window (destructive physics).  Checks:

- completion in **abstract slots** matches the ideal single-winner
  model (the abstraction is faithful);
- window failures (no solo transmitter within W) are rare, as the
  w.h.p. calibration promises;
- the physical cost is ``slots × W`` micro-slots — the poly-log factor
  footnote 4 quotes, measured end to end.
"""

from __future__ import annotations

from repro.assignment import shared_core
from repro.backoff.adapter import DecayExpandedCollision
from repro.core import run_local_broadcast
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import Network
from repro.sim.rng import derive_rng


def measure_expanded(n: int, c: int, k: int, seed: int) -> dict[str, float]:
    """COGCAST over the decay-expanded collision model, with stats."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    collision = DecayExpandedCollision(n_max=n)
    result = run_local_broadcast(
        network,
        seed=seed,
        max_slots=500_000,
        collision=collision,
        require_completion=True,
    )
    stats = collision.stats
    return {
        "slots": result.slots,
        "window": stats.window,
        "micro": result.slots * stats.window,
        "failure_rate": stats.failure_rate,
    }


def measure_ideal(n: int, c: int, k: int, seed: int) -> int:
    """COGCAST under the ideal single-winner model (the control)."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    result = run_local_broadcast(
        network, seed=seed, max_slots=500_000, require_completion=True
    )
    return result.slots


@register(
    "E23",
    "COGCAST over real decay backoff (stack composition)",
    "Footnote 4 composed: expanding each slot into a 4·lg²n decay "
    "window preserves COGCAST's behaviour at poly-log physical cost",
)
def run(trials: int = 10, seed: int = 0, fast: bool = False) -> Table:
    settings = [(16, 8, 2)] if fast else [(16, 8, 2), (32, 8, 2), (64, 16, 4)]
    trials = min(trials, 4) if fast else trials

    rows = []
    for n, c, k in settings:
        seeds = trial_seeds(seed, f"E23-{n}-{c}-{k}", trials)
        expanded = [measure_expanded(n, c, k, s) for s in seeds]
        ideal = mean([measure_ideal(n, c, k, s) for s in seeds])
        slots = mean([e["slots"] for e in expanded])
        window = expanded[0]["window"]
        rows.append(
            (
                n,
                c,
                k,
                round(ideal, 1),
                round(slots, 1),
                round(slots / ideal, 2),
                int(window),
                round(mean([e["micro"] for e in expanded]), 0),
                round(mean([e["failure_rate"] for e in expanded]), 4),
            )
        )
    return Table(
        experiment_id="E23",
        title="COGCAST: ideal collision model vs decay-expanded stack",
        claim="abstract-slot counts match; physical cost = slots × 4·lg²n",
        columns=(
            "n",
            "c",
            "k",
            "ideal slots",
            "expanded slots",
            "exp/ideal",
            "window W",
            "micro-slots",
            "window fail rate",
        ),
        rows=tuple(rows),
        notes=(
            "exp/ideal near 1 with a near-zero window failure rate shows "
            "the single-winner abstraction is faithfully implementable; "
            "the micro-slots column is the poly-log price footnote 4 "
            "quotes"
        ),
    )
