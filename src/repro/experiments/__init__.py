"""The experiment suite: every quantitative claim of the paper as a table.

See DESIGN.md section 5 for the claim-to-experiment map.  Run with::

    python -m repro list
    python -m repro run E01
    python -m repro run all --trials 20

or programmatically::

    from repro.experiments import get, load_all
    table = get("E01").run(trials=10, seed=0, fast=True)
    print(table.render())
"""

from repro.experiments.harness import ExperimentSpec, Table, trial_seeds
from repro.experiments.registry import get, load_all, register

__all__ = [
    "ExperimentSpec",
    "Table",
    "get",
    "load_all",
    "register",
    "trial_seeds",
]
