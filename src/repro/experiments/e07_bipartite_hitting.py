"""E07 — the (c, k)-bipartite hitting game lower bound (Lemma 11).

No player wins within ``c^2/(alpha k)`` rounds with probability 1/2
(``alpha = 8`` at ``beta = 2``).  We pit three player archetypes —
memoryless uniform, exhaustive random-order, deterministic diagonal
sweep — against the uniform referee and check that every player's
*median* win round sits at or above the bound.
"""

from __future__ import annotations

from repro.analysis.theory import bipartite_hitting_lower_bound
from repro.experiments.harness import Table, median, trial_seeds
from repro.experiments.registry import register
from repro.games import (
    DiagonalPlayer,
    ExhaustivePlayer,
    UniformRandomPlayer,
    bipartite_hitting_game,
    play,
)
from repro.sim.rng import derive_rng


def median_win_round(
    c: int, k: int, player_name: str, seeds: list[int]
) -> float:
    """Median rounds-to-win for one player archetype over many games."""
    rounds: list[int] = []
    for seed in seeds:
        game_rng = derive_rng(seed, "referee")
        player_rng = derive_rng(seed, "player")
        game = bipartite_hitting_game(c, k, game_rng)
        if player_name == "uniform":
            player = UniformRandomPlayer(c, player_rng)
        elif player_name == "exhaustive":
            player = ExhaustivePlayer(c, player_rng)
        elif player_name == "diagonal":
            player = DiagonalPlayer(c)
        else:
            raise ValueError(player_name)
        won_in = play(game, player, max_rounds=50 * c * c)
        if won_in is None:
            raise RuntimeError("player failed to win within a huge budget")
        rounds.append(won_in)
    return median(rounds)


@register(
    "E07",
    "(c,k)-bipartite hitting game: no player beats c^2/(8k)",
    "Lemma 11: winning within c^2/(alpha k) rounds has probability < 1/2 "
    "(alpha = 8 for beta = 2, i.e. k <= c/2)",
)
def run(trials: int = 50, seed: int = 0, fast: bool = False) -> Table:
    settings = (
        [(16, 2), (16, 8)] if fast else [(16, 1), (16, 4), (16, 8), (32, 4), (32, 16), (64, 8)]
    )
    trials = min(trials, 15) if fast else trials

    rows = []
    for c, k in settings:
        seeds = trial_seeds(seed, f"E07-{c}-{k}", trials)
        bound = bipartite_hitting_lower_bound(c, k, beta=2.0)
        medians = {
            name: median_win_round(c, k, name, seeds)
            for name in ("uniform", "exhaustive", "diagonal")
        }
        best = min(medians.values())
        rows.append(
            (
                c,
                k,
                round(bound, 1),
                round(medians["uniform"], 1),
                round(medians["exhaustive"], 1),
                round(medians["diagonal"], 1),
                best >= bound,
            )
        )
    return Table(
        experiment_id="E07",
        title="(c,k)-bipartite hitting medians vs Lemma 11 bound",
        claim="Lemma 11: median win round >= c^2/(8k) for every player",
        columns=(
            "c",
            "k",
            "bound c^2/8k",
            "uniform p50",
            "exhaustive p50",
            "diagonal p50",
            "bound holds",
        ),
        rows=tuple(rows),
        notes=(
            "medians approximate the probability-1/2 round; all player "
            "columns sitting above the bound is the reproduced lower bound"
        ),
    )
