"""E10 — the global-label lower bound (Theorem 16).

In the shared-core construction (``C = k + n(c-k)`` channels, ``k``
shared uniformly at random), *any* algorithm's source needs
``(c+1)/(k+1)`` expected slots just to land on an overlapping channel.
The strongest strategy — scanning one's own ``c`` channels without
repetition — achieves the expectation exactly; uniform random hopping
(COGCAST's source) pays ``~c/k``.  Both are measured against the exact
formula.
"""

from __future__ import annotations

from repro.analysis.theory import broadcast_lower_bound_global_labels
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim.rng import derive_rng


def first_overlap_slot(c: int, k: int, strategy: str, seed: int) -> int:
    """Slots until the source first tunes one of its k overlapping channels.

    The k overlapping channels sit at uniformly random positions within
    the source's c channels (the Theorem 16 setup); only the *position
    process* matters, so the experiment samples it directly.
    """
    rng = derive_rng(seed, "setup")
    overlapping = set(rng.sample(range(c), k))
    if strategy == "scan":
        order = list(range(c))
        derive_rng(seed, "scan-order").shuffle(order)
        for slot, channel in enumerate(order, start=1):
            if channel in overlapping:
                return slot
        raise AssertionError("scan must hit an overlapping channel")
    if strategy == "uniform":
        pick = derive_rng(seed, "uniform-picks")
        slot = 0
        while True:
            slot += 1
            if pick.randrange(c) in overlapping:
                return slot
    raise ValueError(strategy)


@register(
    "E10",
    "Global-label bound: first overlap landing = (c+1)/(k+1)",
    "Theorem 16: expected slots to solve broadcast under global labels "
    "is Omega(c/k); the proof's exact expectation is (c+1)/(k+1)",
)
def run(trials: int = 400, seed: int = 0, fast: bool = False) -> Table:
    settings = (
        [(16, 2), (32, 8)] if fast else [(16, 1), (16, 2), (16, 8), (32, 4), (64, 4), (64, 16)]
    )
    trials = min(trials, 100) if fast else trials

    rows = []
    for c, k in settings:
        seeds = trial_seeds(seed, f"E10-{c}-{k}", trials)
        scan = mean([first_overlap_slot(c, k, "scan", s) for s in seeds])
        uniform = mean([first_overlap_slot(c, k, "uniform", s) for s in seeds])
        exact = broadcast_lower_bound_global_labels(c, k)
        rows.append(
            (
                c,
                k,
                round(exact, 2),
                round(scan, 2),
                round(scan / exact, 2),
                round(uniform, 2),
                round(c / k, 2),
            )
        )
    return Table(
        experiment_id="E10",
        title="First overlapping-channel landing vs (c+1)/(k+1)",
        claim="Theorem 16: even the optimal scan pays (c+1)/(k+1) expected slots",
        columns=(
            "c",
            "k",
            "(c+1)/(k+1)",
            "scan mean",
            "scan/exact",
            "uniform mean",
            "c/k",
        ),
        rows=tuple(rows),
        notes=(
            "scan/exact ~ 1.0 reproduces the proof's exact expectation; "
            "uniform hopping tracks the geometric mean c/k"
        ),
    )
