"""E18 — COGCOMP's message overhead by aggregator (Section 5 discussion).

"If the nodes' values are used to compute a function that is
associative (e.g., min/max, count), then each node can locally compute
this function [...] and only pass the outcome to its parent.  [...] the
message size can be restricted to O(polylog(n))."

We run COGCOMP with four aggregators over a sweep of ``n`` and record
the **largest report any node sent** (per the aggregators' size
accounting): associative carriers stay constant-size while the
collect-everything aggregator grows linearly in the subtree size.
"""

from __future__ import annotations

from repro.assignment import shared_core
from repro.core import (
    CollectAggregator,
    CountAggregator,
    MeanAggregator,
    SumAggregator,
    run_data_aggregation,
)
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import Network
from repro.sim.rng import derive_rng


def measure_message_bits(n: int, c: int, k: int, aggregator, seed: int) -> int:
    """Largest phase-four report (bits) in one verified COGCOMP run."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    result = run_data_aggregation(
        network,
        [float(node) for node in range(n)],
        seed=seed,
        aggregator=aggregator,
        require_completion=True,
    )
    return result.max_message_bits


@register(
    "E18",
    "COGCOMP message overhead: associative vs collect",
    "Section 5 discussion: associative aggregation keeps messages "
    "O(polylog n); shipping raw values grows linearly",
)
def run(trials: int = 10, seed: int = 0, fast: bool = False) -> Table:
    c, k = 8, 2
    ns = [16, 32] if fast else [16, 32, 64, 128]
    trials = min(trials, 3) if fast else trials

    rows = []
    for n in ns:
        seeds = trial_seeds(seed, f"E18-{n}", trials)
        sums = mean([measure_message_bits(n, c, k, SumAggregator(), s) for s in seeds])
        counts = mean(
            [measure_message_bits(n, c, k, CountAggregator(), s) for s in seeds]
        )
        means = mean(
            [measure_message_bits(n, c, k, MeanAggregator(), s) for s in seeds]
        )
        collects = mean(
            [measure_message_bits(n, c, k, CollectAggregator(), s) for s in seeds]
        )
        rows.append(
            (
                n,
                int(sums),
                int(counts),
                int(means),
                round(collects, 0),
                round(collects / n, 1),
            )
        )
    return Table(
        experiment_id="E18",
        title="Largest COGCOMP report by aggregator (bits)",
        claim="sum/count/mean columns are flat in n; collect grows ~linearly",
        columns=(
            "n",
            "sum bits",
            "count bits",
            "mean bits",
            "collect bits",
            "collect/n",
        ),
        rows=tuple(rows),
        notes=(
            "bit counts use each aggregator's size model (64-bit words); "
            "a flat collect/n column shows the linear growth the paper's "
            "small-message observation avoids"
        ),
    )
