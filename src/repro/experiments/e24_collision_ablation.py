"""E24 — collision-model ablation (footnote 3).

The broader CRN literature often assumes *all* concurrent messages are
delivered; the paper deliberately analyses the weaker single-winner
model.  This ablation quantifies how much the weaker assumption costs:
COGCAST and COGCOMP run under both models on identical instances.

Expected shape: nearly nothing changes.  For COGCAST, what matters is
whether an uninformed listener hears *some* copy of the message; one
winner is as good as many.  COGCOMP's counting phases are likewise
winner-driven.  Reproducing this near-equality justifies the paper's
choice to prove its results under the weaker (more realistic) model.
"""

from __future__ import annotations

from repro.assignment import shared_core
from repro.core import SumAggregator, run_data_aggregation, run_local_broadcast
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import AllDeliveredCollision, Network, SingleWinnerCollision
from repro.sim.rng import derive_rng


def measure_both(n: int, c: int, k: int, seed: int) -> dict[str, float]:
    """Broadcast + verified aggregation slots under both collision models."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    out: dict[str, float] = {}
    for name, model in (
        ("single", SingleWinnerCollision()),
        ("all", AllDeliveredCollision()),
    ):
        broadcast = run_local_broadcast(
            network,
            seed=seed,
            max_slots=200_000,
            collision=model,
            require_completion=True,
        )
        values = [float(node) for node in range(n)]
        aggregation = run_data_aggregation(
            network,
            values,
            seed=seed,
            aggregator=SumAggregator(),
            collision=model,
            require_completion=True,
        )
        if aggregation.value != sum(values):
            raise RuntimeError(f"wrong aggregate under {name} model")
        out[f"cast_{name}"] = broadcast.slots
        out[f"comp_{name}"] = aggregation.total_slots
    return out


@register(
    "E24",
    "Collision-model ablation: single-winner vs all-delivered",
    "Footnote 3: the paper's weaker single-winner model costs its "
    "algorithms essentially nothing vs the literature's stronger model",
)
def run(trials: int = 10, seed: int = 0, fast: bool = False) -> Table:
    settings = [(24, 8, 2)] if fast else [(24, 8, 2), (48, 12, 3), (16, 24, 4)]
    trials = min(trials, 3) if fast else trials

    rows = []
    for n, c, k in settings:
        seeds = trial_seeds(seed, f"E24-{n}-{c}-{k}", trials)
        measurements = [measure_both(n, c, k, s) for s in seeds]
        cast_single = mean([m["cast_single"] for m in measurements])
        cast_all = mean([m["cast_all"] for m in measurements])
        comp_single = mean([m["comp_single"] for m in measurements])
        comp_all = mean([m["comp_all"] for m in measurements])
        rows.append(
            (
                n,
                c,
                k,
                round(cast_single, 1),
                round(cast_all, 1),
                round(cast_single / cast_all, 2),
                round(comp_single, 1),
                round(comp_all, 1),
                round(comp_single / comp_all, 2),
            )
        )
    return Table(
        experiment_id="E24",
        title="COGCAST/COGCOMP under both collision models",
        claim="ratios ~1: one winner per channel is as good as all-delivered",
        columns=(
            "n",
            "c",
            "k",
            "cast single",
            "cast all",
            "cast ratio",
            "comp single",
            "comp all",
            "comp ratio",
        ),
        rows=tuple(rows),
        notes=(
            "every aggregation verified exact under both models; ratios "
            "near 1 reproduce footnote 3's implicit point that the weaker "
            "model suffices"
        ),
    )
