"""E01 — COGCAST completion time scales as ``(c/k) * lg n`` for ``c <= n``.

Theorem 4, the ``c <= n`` branch.  Fixed ``(c, k)``, sweep ``n``; the
measured completion slots should grow linearly in the predictor
``(c/k) * lg n``, i.e. the ratio column should be flat and the
proportional fit tight.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.fitting import fit_linear
from repro.analysis.theory import lg
from repro.assignment import shared_core
from repro.core import run_local_broadcast
from repro.experiments.harness import Table, map_trials, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import Network
from repro.sim.rng import derive_rng


def measure_cogcast_slots(
    n: int, c: int, k: int, seed: int, *, max_slots: int | None = None
) -> int:
    """One COGCAST completion-time measurement on a shared-core network
    with randomized local labels."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    budget = max_slots if max_slots is not None else 1_000_000
    result = run_local_broadcast(
        network, source=0, seed=seed, max_slots=budget, require_completion=True
    )
    return result.slots


@register(
    "E01",
    "COGCAST completion vs n (c <= n regime)",
    "Theorem 4: COGCAST solves local broadcast in O((c/k) lg n) slots "
    "w.h.p. when c <= n",
)
def run(trials: int = 20, seed: int = 0, fast: bool = False) -> Table:
    c, k = 16, 4
    # Start the sweep well above c so the c <= n branch's asymptotics
    # dominate (at n = c the max{1, c/n} boundary blurs the shape).
    ns = [64, 128, 256] if fast else [64, 128, 256, 512, 1024]
    trials = min(trials, 5) if fast else trials

    rows = []
    predictors: list[float] = []
    means: list[float] = []
    for n in ns:
        samples = map_trials(
            partial(measure_cogcast_slots, n, c, k),
            trial_seeds(seed, f"E01-{n}", trials),
        )
        predictor = (c / k) * lg(n)
        sample_mean = mean(samples)
        predictors.append(predictor)
        means.append(sample_mean)
        rows.append(
            (
                n,
                c,
                k,
                round(predictor, 1),
                round(sample_mean, 1),
                max(samples),
                round(sample_mean / predictor, 2),
            )
        )
    fit = fit_linear(predictors, means)
    return Table(
        experiment_id="E01",
        title="COGCAST completion vs n (c <= n)",
        claim="Theorem 4: slots = O((c/k) lg n) for c <= n",
        columns=(
            "n",
            "c",
            "k",
            "(c/k)*lg n",
            "mean slots",
            "max slots",
            "slots/pred",
        ),
        rows=tuple(rows),
        notes=(
            "Theorem 4 is an upper bound: the reproduced shape is the "
            "slots/pred column staying bounded (here < 1.5) while n grows "
            f"16x; linear fit slots ~ {fit.slope:.2f} * pred "
            f"+ {fit.intercept:.1f}"
        ),
    )
