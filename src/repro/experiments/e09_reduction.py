"""E09 — the Lemma 12 reduction, run operationally.

Hosting COGCAST inside the bipartite-hitting simulation must (a) respect
the structural guarantee ``game_rounds <= min{c, n} * simulated_slots``
and (b) — because Lemma 11 bounds *every* player — the induced player's
median win round must clear ``c^2/(8k)``.  Together these transfer the
game bound into Theorem 15's ``Omega((c/k) * max{1, c/n})`` on
broadcast itself, which the last column checks directly against the
simulated slot counts.
"""

from __future__ import annotations

from repro.analysis.theory import (
    bipartite_hitting_lower_bound,
    broadcast_lower_bound_local_labels,
)
from repro.core import CogCast
from repro.experiments.harness import Table, median, trial_seeds
from repro.experiments.registry import register
from repro.games import BroadcastReductionPlayer, bipartite_hitting_game
from repro.sim.protocol import NodeView
from repro.sim.rng import derive_rng


def run_reduction_once(c: int, k: int, n: int, seed: int) -> tuple[int, int]:
    """Returns ``(game_rounds, simulated_slots)`` for one hosted COGCAST run."""

    def factory(view: NodeView) -> CogCast:
        return CogCast(view, is_source=(view.node_id == 0))

    game = bipartite_hitting_game(c, k, derive_rng(seed, "referee"))
    player = BroadcastReductionPlayer(game, factory, n=n, k=k, seed=seed)
    outcome = player.run(max_slots=200 * c * c)
    if not outcome.won:
        raise RuntimeError("hosted COGCAST never made broadcast progress")
    if outcome.game_rounds > outcome.proposals_per_slot_bound * outcome.simulated_slots:
        raise RuntimeError("Lemma 12 per-slot proposal bound violated")
    return outcome.game_rounds, outcome.simulated_slots


@register(
    "E09",
    "Lemma 12 reduction: COGCAST as a hitting-game player",
    "Lemma 12 + Lemma 11 => Theorem 15: broadcast needs "
    "Omega((c/k) max{1, c/n}) slots under local labels",
)
def run(trials: int = 30, seed: int = 0, fast: bool = False) -> Table:
    settings = (
        [(8, 2, 8), (8, 2, 32)]
        if fast
        else [(8, 2, 8), (8, 2, 32), (16, 4, 16), (16, 4, 64), (32, 4, 32)]
    )
    trials = min(trials, 8) if fast else trials

    rows = []
    for c, k, n in settings:
        seeds = trial_seeds(seed, f"E09-{c}-{k}-{n}", trials)
        measurements = [run_reduction_once(c, k, n, s) for s in seeds]
        game_median = median([rounds for rounds, _ in measurements])
        slots_median = median([slots for _, slots in measurements])
        game_bound = bipartite_hitting_lower_bound(c, k, beta=2.0)
        slot_bound = broadcast_lower_bound_local_labels(n, c, k) / 8.0
        rows.append(
            (
                c,
                k,
                n,
                round(game_median, 1),
                round(game_bound, 1),
                game_median >= game_bound,
                round(slots_median, 1),
                round(slot_bound, 1),
                slots_median >= slot_bound,
            )
        )
    return Table(
        experiment_id="E09",
        title="Reduction: hosted COGCAST vs the transferred bounds",
        claim="game rounds >= c^2/(8k); slots >= (c/8k) max{1, c/n}",
        columns=(
            "c",
            "k",
            "n",
            "game p50",
            "game bound",
            "game ok",
            "slots p50",
            "slot bound",
            "slots ok",
        ),
        rows=tuple(rows),
        notes=(
            "slot bound is the Theorem 15 expression divided by the same "
            "alpha = 8 constant the game bound carries (the reduction "
            "transfers the constant along with the bound)"
        ),
    )
