"""E25 — the two-stage epidemic structure of COGCAST's analysis (§4).

The proof of Theorem 4 splits the execution at ``c/2`` informed nodes:

- **stage one** is "a typical exponential doubling process" — each
  informed node independently informs someone with probability
  ``Ω(k/c)`` per slot, so the informed set grows geometrically;
- **stage two** flips to the uninformed side: each straggler is
  informed with probability ``Ω(k/c)`` per slot, a coupon-collector
  tail of ``O((c/k)·lg n)``.

This experiment measures the structure directly from traces: the slot
at which ``c/2`` nodes are informed, the completion slot, and the
per-slot growth factor within stage one (should be a constant > 1,
i.e. genuine doubling behaviour, not additive growth).
"""

from __future__ import annotations

from repro.assignment import shared_core
from repro.core import run_local_broadcast
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import EventTrace, Network, informed_curve
from repro.sim.rng import derive_rng


def measure_stages(n: int, c: int, k: int, seed: int) -> dict[str, float]:
    """Stage-one end slot, total slots, and stage-one growth factor."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    trace = EventTrace()
    result = run_local_broadcast(
        network, seed=seed, max_slots=500_000, trace=trace, require_completion=True
    )
    curve = informed_curve(trace, root=0, num_nodes=n)
    threshold = max(2, c // 2)
    stage1_end = next(slot for slot, count in curve if count >= threshold)

    # Mean multiplicative growth per informing slot within stage one.
    growth_factors = []
    previous = 1
    for slot, count in curve:
        if previous >= threshold:
            break
        growth_factors.append(count / previous)
        previous = count
    growth = (
        sum(growth_factors) / len(growth_factors) if growth_factors else 1.0
    )
    return {
        "stage1": stage1_end + 1,
        "total": result.slots,
        "growth": growth,
    }


@register(
    "E25",
    "COGCAST's two epidemic stages (exponential spread, then the tail)",
    "Section 4's analysis structure: geometric growth to c/2 informed, "
    "then an O((c/k) lg n) straggler tail",
)
def run(trials: int = 15, seed: int = 0, fast: bool = False) -> Table:
    settings = [(64, 16, 4)] if fast else [(64, 16, 4), (128, 16, 4), (256, 32, 4)]
    trials = min(trials, 5) if fast else trials

    rows = []
    for n, c, k in settings:
        seeds = trial_seeds(seed, f"E25-{n}-{c}-{k}", trials)
        measurements = [measure_stages(n, c, k, s) for s in seeds]
        stage1 = mean([m["stage1"] for m in measurements])
        total = mean([m["total"] for m in measurements])
        growth = mean([m["growth"] for m in measurements])
        rows.append(
            (
                n,
                c,
                k,
                round(stage1, 1),
                round(total, 1),
                round(stage1 / total, 2),
                round(growth, 2),
            )
        )
    return Table(
        experiment_id="E25",
        title="Stage split and growth factor of the epidemic",
        claim="stage one is a small fraction of the run and multiplicative "
        "(growth factor well above 1 per informing slot)",
        columns=(
            "n",
            "c",
            "k",
            "slots to c/2",
            "total slots",
            "stage1 frac",
            "growth/slot",
        ),
        rows=tuple(rows),
        notes=(
            "growth/slot is the mean multiplicative jump of the informed "
            "count across stage-one informing slots — values near or "
            "above 1.5 are the 'exponential doubling process' of the proof"
        ),
    )
