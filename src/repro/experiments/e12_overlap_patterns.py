"""E12 — COGCAST is insensitive to the *pattern* of overlap.

Claim 2's analysis splits on whether shared channels are crowded (all
pairs share the same ``k`` channels) or spread thin (every pair shares
its own distinct ``k``-set), and shows the independent-inform
probability is ``Omega(k/c)`` either way.  Running both extremes — plus
the realistic random-core middle — at identical ``(n, c, k)`` should
give completion times within a small constant of each other.
"""

from __future__ import annotations

from repro.assignment import pairwise_blocks, random_with_core, shared_core
from repro.core import run_local_broadcast
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import Network
from repro.sim.rng import derive_rng


def measure_pattern(pattern: str, n: int, c: int, k: int, seed: int) -> int:
    """COGCAST completion slots on one instance of the named pattern."""
    rng = derive_rng(seed, "assignment")
    if pattern == "shared-core":
        assignment = shared_core(n, c, k, rng)
    elif pattern == "pairwise-blocks":
        assignment = pairwise_blocks(n, c, k, rng)
    elif pattern == "random-core":
        assignment = random_with_core(n, c, k, rng)
    else:
        raise ValueError(pattern)
    network = Network.static(assignment.shuffled_labels(rng), validate=False)
    result = run_local_broadcast(
        network, source=0, seed=seed, max_slots=1_000_000, require_completion=True
    )
    return result.slots


@register(
    "E12",
    "COGCAST across overlap patterns (Claim 2's two extremes)",
    "Claim 2: the independent-inform probability is Omega(k/c) whether "
    "the shared channels are crowded or spread thin",
)
def run(trials: int = 15, seed: int = 0, fast: bool = False) -> Table:
    # pairwise_blocks needs c >= k(n-1); pick shapes satisfying it.
    settings = [(8, 14, 2)] if fast else [(8, 14, 2), (12, 22, 2), (12, 33, 3)]
    trials = min(trials, 5) if fast else trials

    rows = []
    for n, c, k in settings:
        seeds = trial_seeds(seed, f"E12-{n}-{c}-{k}", trials)
        means = {
            pattern: mean([measure_pattern(pattern, n, c, k, s) for s in seeds])
            for pattern in ("shared-core", "pairwise-blocks", "random-core")
        }
        spread = max(means.values()) / min(means.values())
        rows.append(
            (
                n,
                c,
                k,
                round(means["shared-core"], 1),
                round(means["pairwise-blocks"], 1),
                round(means["random-core"], 1),
                round(spread, 2),
            )
        )
    return Table(
        experiment_id="E12",
        title="COGCAST completion by overlap pattern",
        claim="Claim 2: same (n, c, k) => same order of completion time",
        columns=(
            "n",
            "c",
            "k",
            "shared-core",
            "pairwise-blocks",
            "random-core",
            "max/min",
        ),
        rows=tuple(rows),
        notes=(
            "a small max/min spread (constant, not growing with the "
            "parameters) reproduces the pattern-independence claim; note "
            "random-core is faster since extra overlaps only help"
        ),
    )
