"""E20 — seed-exchange rendezvous (footnote 1).

The paper's footnote 1 argues randomized rendezvous loses nothing to
deterministic schemes on *repeated* meetings: after one meeting the
nodes swap PRNG seeds and can compute each other's hops forever after.

We measure inter-meeting gaps for a node pair: with seed exchange, the
first gap is the usual ``~c^2/k`` search and **every later gap is
exactly one slot**; the memoryless control pays ``~c^2/k`` every time.
"""

from __future__ import annotations

from repro.analysis.theory import rendezvous_expected_slots
from repro.baselines import repeated_rendezvous_gaps
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register


@register(
    "E20",
    "Seed-exchange rendezvous: repeated meetings become O(1)",
    "Footnote 1: after swapping PRNG seeds at the first meeting, "
    "randomized nodes rendezvous every slot thereafter",
)
def run(trials: int = 30, seed: int = 0, fast: bool = False) -> Table:
    settings = [(8, 2)] if fast else [(8, 2), (16, 2), (16, 4), (32, 4)]
    trials = min(trials, 10) if fast else trials

    rows = []
    for c, k in settings:
        seeds = trial_seeds(seed, f"E20-{c}-{k}", trials)
        swapped = [
            repeated_rendezvous_gaps(c, k, s, meetings=5, exchange_seeds=True)
            for s in seeds
        ]
        memoryless = [
            repeated_rendezvous_gaps(c, k, s, meetings=5, exchange_seeds=False)
            for s in seeds
        ]
        first_gap = mean([gaps[0] for gaps in swapped])
        later_gaps = mean(
            [gap for gaps in swapped for gap in gaps[1:]]
        )
        control_later = mean(
            [gap for gaps in memoryless for gap in gaps[1:]]
        )
        rows.append(
            (
                c,
                k,
                round(rendezvous_expected_slots(c, k), 1),
                round(first_gap, 1),
                round(later_gaps, 2),
                round(control_later, 1),
            )
        )
    return Table(
        experiment_id="E20",
        title="Inter-meeting gaps with and without seed exchange",
        claim="first gap ~ c^2/k; post-exchange gaps = 1; memoryless "
        "control keeps paying ~c^2/k",
        columns=(
            "c",
            "k",
            "c^2/k",
            "first gap",
            "post-swap gaps",
            "memoryless gaps",
        ),
        rows=tuple(rows),
        notes=(
            "post-swap gaps pinned at exactly 1.0 reproduces footnote 1's "
            "claim that randomization concedes nothing on repeat meetings"
        ),
    )
