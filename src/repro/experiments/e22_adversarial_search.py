"""E22 — adversarial instance search vs the Theorem 4 budget.

Theorem 4's bound quantifies over all overlap-``k`` assignments.  A
proof covers the space; an empirical reproduction can also *attack* it:
hill-climb over assignments to maximize COGCAST's completion time and
check the found worst case still sits inside the Theorem 4 budget.

Failing to beat the bound is the point (as with the game experiments,
the lower-bound logic in reverse): if the search ever found an instance
exceeding the budget at the calibrated constant, either the constant or
the implementation would be wrong.
"""

from __future__ import annotations

from repro.analysis.theory import cogcast_slot_bound
from repro.assignment.adversarial_search import find_hard_instance
from repro.experiments.harness import Table
from repro.experiments.registry import register


@register(
    "E22",
    "Adversarial assignment search vs the Theorem 4 budget",
    "Theorem 4 holds for every assignment: a hill climber maximizing "
    "completion time stays inside the calibrated budget",
)
def run(trials: int = 1, seed: int = 0, fast: bool = False) -> Table:
    settings = [(12, 6, 2)] if fast else [(12, 6, 2), (16, 8, 2), (8, 12, 3)]
    steps = 20 if fast else 60

    rows = []
    for n, c, k in settings:
        search = find_hard_instance(n, c, k, seed=seed, steps=steps)
        budget = cogcast_slot_bound(n, c, k)
        rows.append(
            (
                n,
                c,
                k,
                round(search.initial_score, 1),
                round(search.score, 1),
                round(search.score / search.initial_score, 2),
                budget,
                search.score <= budget,
                search.evaluations,
            )
        )
    return Table(
        experiment_id="E22",
        title="Hill-climbed worst instances vs Theorem 4 budget",
        claim="the searched worst case never exceeds the w.h.p. budget",
        columns=(
            "n",
            "c",
            "k",
            "start mean",
            "worst mean",
            "worst/start",
            "Thm4 budget",
            "within budget",
            "evals",
        ),
        rows=tuple(rows),
        notes=(
            "worst/start > 1 shows the search does find harder instances "
            "than the shared-core start; 'within budget' holding anyway "
            "is the reproduced universality of Theorem 4"
        ),
    )
