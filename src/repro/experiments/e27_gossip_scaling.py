"""E27 — multi-message gossip vs sequential COGCAST (extension).

The library's :class:`~repro.core.gossip.GossipCast` circulates ``m``
messages concurrently; the paper's tools support the same goal by
running COGCAST ``m`` times back to back.  This experiment measures the
trade: concurrent gossip shares slots across messages but informed
nodes are half-duplex (they mostly talk, rarely hear), while the
sequential composition pays the full broadcast cost per message but
each round is the paper's optimally-analysed primitive.

No paper claim is at stake — the table documents the extension's
empirical scaling so users can choose.
"""

from __future__ import annotations

from repro.assignment import shared_core
from repro.core import run_local_broadcast
from repro.core.runners import run_gossip
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import Network
from repro.sim.rng import derive_rng


def measure_gossip(n: int, c: int, k: int, m: int, seed: int) -> int:
    """Slots for m concurrent messages to reach everyone."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    sources = {node: f"msg-{node}" for node in range(m)}
    result = run_gossip(network, sources, seed=seed, max_slots=2_000_000)
    if not result.completed:
        raise RuntimeError("gossip did not complete")
    return result.slots


def measure_sequential(n: int, c: int, k: int, m: int, seed: int) -> int:
    """Total slots for m back-to-back COGCAST broadcasts."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    total = 0
    for message in range(m):
        result = run_local_broadcast(
            network,
            source=message,
            seed=derive_rng(seed, "round", message).randrange(2**31),
            max_slots=2_000_000,
            require_completion=True,
        )
        total += result.slots
    return total


@register(
    "E27",
    "Concurrent gossip vs sequential COGCAST (extension)",
    "extension: m concurrent epidemic messages vs m sequential "
    "broadcasts — measured trade, no paper claim",
)
def run(trials: int = 10, seed: int = 0, fast: bool = False) -> Table:
    n, c, k = 32, 8, 2
    ms = [2, 4] if fast else [1, 2, 4, 8]
    trials = min(trials, 3) if fast else trials

    rows = []
    for m in ms:
        seeds = trial_seeds(seed, f"E27-{m}", trials)
        gossip = mean([measure_gossip(n, c, k, m, s) for s in seeds])
        sequential = mean([measure_sequential(n, c, k, m, s) for s in seeds])
        rows.append(
            (
                n,
                c,
                k,
                m,
                round(gossip, 1),
                round(sequential, 1),
                round(sequential / gossip, 2),
            )
        )
    return Table(
        experiment_id="E27",
        title="Gossip (concurrent) vs m sequential COGCAST rounds",
        claim="extension measurement: where concurrency pays despite "
        "half-duplex contention",
        columns=(
            "n",
            "c",
            "k",
            "messages m",
            "gossip slots",
            "sequential slots",
            "seq/gossip",
        ),
        rows=tuple(rows),
        notes=(
            "seq/gossip > 1 would mean concurrent circulation wins; the "
            "measured ratios fall well below 1 for m >= 2 — naive "
            "always-broadcast gossip is crippled by half-duplex radios "
            "(informed nodes talk and so rarely hear), vindicating the "
            "paper's one-message-at-a-time design"
        ),
    )
