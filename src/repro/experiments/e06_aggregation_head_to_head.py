"""E06 — COGCOMP vs the rendezvous-aggregation baseline.

Paper Section 1: the straightforward strategy costs ``O(c^2 n / k)``
slots; COGCOMP costs ``O((c/k) max{1,c/n} lg n + n)``.  For ``n >= c``
the separation is roughly a factor ``c^2/k`` per node against ``n``,
so COGCOMP's advantage grows with both ``n`` and ``c``.
"""

from __future__ import annotations

from repro.assignment import shared_core
from repro.baselines import run_rendezvous_aggregation
from repro.experiments.e05_cogcomp_scaling import measure_cogcomp
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import Network
from repro.sim.rng import derive_rng


def measure_baseline_aggregation(n: int, c: int, k: int, seed: int) -> int:
    """Completion slots of the rendezvous-aggregation baseline."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    values = [float(node) for node in range(n)]
    result = run_rendezvous_aggregation(
        network, values, source=0, seed=seed, max_slots=5_000_000
    )
    if not result.completed:
        raise RuntimeError("baseline aggregation did not complete")
    return result.slots


@register(
    "E06",
    "COGCOMP vs rendezvous aggregation",
    "Section 1: the rendezvous strategy costs O(c^2 n / k); COGCOMP "
    "costs O((c/k) max{1,c/n} lg n + n)",
)
def run(trials: int = 10, seed: int = 0, fast: bool = False) -> Table:
    c, k = 16, 4
    ns = [16, 32] if fast else [16, 32, 64, 128]
    trials = min(trials, 3) if fast else trials

    rows = []
    for n in ns:
        seeds = trial_seeds(seed, f"E06-{n}", trials)
        cogcomp = [measure_cogcomp(n, c, k, s)["total"] for s in seeds]
        baseline = [measure_baseline_aggregation(n, c, k, s) for s in seeds]
        rows.append(
            (
                n,
                c,
                k,
                round(mean(cogcomp), 1),
                round(mean(baseline), 1),
                round(mean(baseline) / mean(cogcomp), 2),
            )
        )
    return Table(
        experiment_id="E06",
        title="COGCOMP vs rendezvous aggregation",
        claim="Section 1: COGCOMP wins, and its advantage grows with n",
        columns=("n", "c", "k", "cogcomp slots", "rendezvous slots", "speedup"),
        rows=tuple(rows),
        notes="the speedup column should increase down the sweep",
    )
