"""E02 — the ``max{1, c/n}`` factor: COGCAST when ``c >= n``.

Theorem 4, the ``c >= n`` branch.  Fixed ``(n, k)``, sweep ``c`` past
``n``; completion slots should track ``(c/k) * (c/n) * lg n``, i.e. grow
*quadratically* in ``c`` — the price of thin random meetings in a wide
spectrum.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.fitting import fit_proportional
from repro.analysis.theory import lg
from repro.experiments.e01_cogcast_scaling_n import measure_cogcast_slots
from repro.experiments.harness import Table, map_trials, mean, trial_seeds
from repro.experiments.registry import register


@register(
    "E02",
    "COGCAST completion vs c (c >= n regime)",
    "Theorem 4: slots = O((c/k) * (c/n) * lg n) when c >= n",
)
def run(trials: int = 20, seed: int = 0, fast: bool = False) -> Table:
    n, k = 16, 2
    cs = [16, 32, 64] if fast else [16, 32, 64, 128]
    trials = min(trials, 5) if fast else trials

    rows = []
    predictors: list[float] = []
    means: list[float] = []
    for c in cs:
        samples = map_trials(
            partial(measure_cogcast_slots, n, c, k),
            trial_seeds(seed, f"E02-{c}", trials),
        )
        predictor = (c / k) * max(1.0, c / n) * lg(n)
        sample_mean = mean(samples)
        predictors.append(predictor)
        means.append(sample_mean)
        rows.append(
            (
                n,
                c,
                k,
                round(predictor, 1),
                round(sample_mean, 1),
                max(samples),
                round(sample_mean / predictor, 2),
            )
        )
    fit = fit_proportional(predictors, means)
    return Table(
        experiment_id="E02",
        title="COGCAST completion vs c (c >= n)",
        claim="Theorem 4: slots = O((c/k)(c/n) lg n) for c >= n",
        columns=(
            "n",
            "c",
            "k",
            "(c/k)(c/n)lg n",
            "mean slots",
            "max slots",
            "slots/pred",
        ),
        rows=tuple(rows),
        notes=(
            f"proportional fit: slots ~ {fit.slope:.2f} * predictor, "
            f"R^2 = {fit.r_squared:.3f}; quadratic growth in c is the "
            "max{1, c/n} factor at work"
        ),
    )
