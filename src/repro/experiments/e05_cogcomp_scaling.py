"""E05 — COGCOMP total time and its phase decomposition.

Theorem 10: aggregation completes in
``O((c/k) max{1, c/n} lg n + n)`` slots.  Sweep ``n`` with ``(c, k)``
fixed; phases one and three cost the fixed COGCAST budget ``l``, phase
two costs exactly ``n``, and phase four should stay within a constant
multiple of ``3n`` slots (O(n) three-slot steps).
"""

from __future__ import annotations

from functools import partial

from repro.assignment import shared_core
from repro.core import SumAggregator, run_data_aggregation
from repro.experiments.harness import Table, map_trials, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import Network
from repro.sim.rng import derive_rng


def measure_cogcomp(n: int, c: int, k: int, seed: int) -> dict[str, float]:
    """One verified COGCOMP run; returns the slot decomposition."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    values = [float(node * 3 + 1) for node in range(n)]
    result = run_data_aggregation(
        network,
        values,
        source=0,
        seed=seed,
        aggregator=SumAggregator(),
        require_completion=True,
    )
    if result.value != sum(values):
        raise RuntimeError(
            f"wrong aggregate: {result.value} != {sum(values)}"
        )
    return {
        "total": result.total_slots,
        "phase1": result.phase1_slots,
        "phase2": result.phase2_slots,
        "phase3": result.phase3_slots,
        "phase4": result.phase4_slots,
    }


@register(
    "E05",
    "COGCOMP total slots and phase decomposition vs n",
    "Theorem 10: COGCOMP aggregates in O((c/k) max{1,c/n} lg n + n) "
    "slots w.h.p.; phase four is O(n) steps",
)
def run(trials: int = 10, seed: int = 0, fast: bool = False) -> Table:
    c, k = 16, 4
    ns = [16, 32] if fast else [16, 32, 64, 128]
    trials = min(trials, 3) if fast else trials

    rows = []
    for n in ns:
        samples = map_trials(
            partial(measure_cogcomp, n, c, k),
            trial_seeds(seed, f"E05-{n}", trials),
        )
        phase4_mean = mean([s["phase4"] for s in samples])
        total_mean = mean([s["total"] for s in samples])
        rows.append(
            (
                n,
                c,
                k,
                int(samples[0]["phase1"]),
                n,
                int(samples[0]["phase3"]),
                round(phase4_mean, 1),
                round(phase4_mean / (3 * n), 2),
                round(total_mean, 1),
            )
        )
    return Table(
        experiment_id="E05",
        title="COGCOMP slots by phase vs n",
        claim="Theorem 10: total = 2l + n + O(n) three-slot steps",
        columns=(
            "n",
            "c",
            "k",
            "phase1 (l)",
            "phase2 (n)",
            "phase3 (l)",
            "phase4 mean",
            "phase4/3n",
            "total mean",
        ),
        rows=tuple(rows),
        notes=(
            "every run verified the exact aggregate at the source; "
            "a bounded phase4/3n column reproduces the O(n)-steps claim"
        ),
    )
