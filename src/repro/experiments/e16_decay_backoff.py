"""E16 — the decay-backoff cost of the collision abstraction (footnote 4).

The paper's model assumes contention resolves "for free" inside a slot;
footnote 4 claims standard decay backoff realizes it within
``O(log^2 n)`` micro-slots w.h.p.  Sweep the contender count and check
(a) the median micro-slot cost tracks ``lg^2 m`` and (b) success within
the ``4 lg^2``-budget is near-certain.
"""

from __future__ import annotations

from repro.analysis.theory import decay_backoff_bound, lg
from repro.backoff import resolve_contention
from repro.experiments.harness import Table, median, trial_seeds
from repro.experiments.registry import register
from repro.sim.rng import derive_rng


@register(
    "E16",
    "Decay backoff: collision abstraction in O(log^2 n) micro-slots",
    "Footnote 4: exponentially decreasing broadcast probabilities "
    "deliver one message w.h.p. within O(log^2 n) rounds",
)
def run(trials: int = 200, seed: int = 0, fast: bool = False) -> Table:
    contenders = [4, 32] if fast else [2, 4, 8, 16, 32, 64, 128, 256]
    trials = min(trials, 40) if fast else trials

    rows = []
    for m in contenders:
        seeds = trial_seeds(seed, f"E16-{m}", trials)
        budget = decay_backoff_bound(m, constant=4.0)
        results = [
            resolve_contention(m, derive_rng(s, "decay"), max_micro_slots=4 * budget)
            for s in seeds
        ]
        succeeded = [r for r in results if r.succeeded]
        slot_median = median([r.micro_slots for r in succeeded]) if succeeded else float("inf")
        within_budget = sum(
            1 for r in succeeded if r.micro_slots <= budget
        ) / len(results)
        rows.append(
            (
                m,
                round(lg(m) ** 2, 1),
                round(slot_median, 1),
                budget,
                round(within_budget, 3),
            )
        )
    return Table(
        experiment_id="E16",
        title="Decay backoff micro-slot cost vs lg^2 m",
        claim="footnote 4: one winner w.h.p. within O(log^2 n) micro-slots",
        columns=(
            "contenders",
            "lg^2 m",
            "micro-slots p50",
            "4*lg^2 budget",
            "P(within budget)",
        ),
        rows=tuple(rows),
        notes=(
            "physics here is *destructive* collisions (harsher than the "
            "paper's model) — the abstraction is realizable even then"
        ),
    )
