"""E28 — ablating the simultaneous-activation assumption (extension).

The model assumes "all nodes are activated simultaneously" (§2).
COGCAST's slot behaviour is memoryless, so the assumption should only
matter through *who is present to listen*: nodes that wake late simply
start listening late.  We stagger activations uniformly over a window
``W`` and measure completion (time until every node, once awake, has
been informed), sweeping ``W`` from 0 (the paper's model) to several
multiples of the fault-free completion time.

Expected shape: completion tracks ``W + O(baseline)`` — the last waker
dominates, and the epidemic absorbs it in O(1) extra rounds because by
then almost everyone else is informed.  (COGCOMP, whose phases are
slot-indexed, genuinely needs the assumption; this experiment is about
the broadcast primitive.)
"""

from __future__ import annotations

from repro.assignment import shared_core
from repro.core import CogCast
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import DelayedStartProtocol, Engine, Network, make_views
from repro.sim.rng import derive_rng


def measure_staggered(n: int, c: int, k: int, window: int, seed: int) -> int:
    """Completion slots with activations uniform over [0, window]."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    views = make_views(network, seed)
    inners = [CogCast(v, is_source=(v.node_id == 0)) for v in views]
    wake = derive_rng(seed, "wake")
    protocols = [
        DelayedStartProtocol(
            inner, activation_slot=(0 if node == 0 else wake.randrange(window + 1))
        )
        for node, inner in enumerate(inners)
    ]
    engine = Engine(network, protocols, seed=seed)
    result = engine.run(
        500_000, stop_when=lambda _: all(p.informed for p in inners)
    )
    if not result.completed:
        raise RuntimeError("staggered broadcast did not complete")
    return result.slots


@register(
    "E28",
    "COGCAST under staggered activation (extension)",
    "extension: relaxing §2's simultaneous-activation assumption costs "
    "the broadcast only the wake window itself",
)
def run(trials: int = 15, seed: int = 0, fast: bool = False) -> Table:
    n, c, k = 32, 8, 2
    windows = [0, 40] if fast else [0, 10, 40, 160]
    trials = min(trials, 5) if fast else trials

    rows = []
    baseline = None
    for window in windows:
        seeds = trial_seeds(seed, f"E28-{window}", trials)
        slots = mean([measure_staggered(n, c, k, window, s) for s in seeds])
        if baseline is None:
            baseline = slots
        overhead = slots - window
        rows.append(
            (
                n,
                c,
                k,
                window,
                round(slots, 1),
                round(overhead, 1),
                round(overhead / baseline, 2),
            )
        )
    return Table(
        experiment_id="E28",
        title="COGCAST completion vs activation window",
        claim="slots ~ window + O(baseline): late wakers join a saturated "
        "epidemic and are informed almost immediately",
        columns=(
            "n",
            "c",
            "k",
            "wake window W",
            "mean slots",
            "slots - W",
            "(slots-W)/base",
        ),
        rows=tuple(rows),
        notes=(
            "the (slots-W)/base column staying near (or below) 1 shows "
            "the assumption is a convenience for COGCAST, not a crutch; "
            "COGCOMP's slot-indexed phases do need it"
        ),
    )
