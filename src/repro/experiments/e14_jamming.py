"""E14 — COGCAST under an n-uniform jamming adversary (Theorem 18).

Theorem 18's reduction: jamming at most ``k'`` channels per node per
slot in a ``c``-channel multi-channel network is the dynamic-CRN model
with pairwise overlap ``>= c - 2k'``.  Running COGCAST against jammers
of increasing budget should therefore degrade completion time smoothly
as ``c/(c - 2k')`` grows — and never prevent completion while
``k' < c/2``.

Three jammer archetypes: per-node random (the strongest oblivious
n-uniform pattern against a memoryless algorithm), a 1-uniform sweeping
narrowband interferer, and a targeted per-node fixed set.
"""

from __future__ import annotations

from repro.assignment import identical
from repro.core import run_local_broadcast
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import Network, RandomJammer, SweepJammer, TargetedJammer
from repro.sim.rng import derive_rng


def measure_jammed(c: int, n: int, budget: int, jammer_kind: str, seed: int) -> int:
    """Completion slots against the named jammer at the given budget."""
    assignment = identical(n, c)
    rng = derive_rng(seed, "labels")
    network = Network.static(assignment.shuffled_labels(rng), validate=False)
    universe = sorted(assignment.universe)
    if budget == 0:
        jammer = None
    elif jammer_kind == "random":
        jammer = RandomJammer(universe, budget, derive_rng(seed, "jammer"))
    elif jammer_kind == "sweep":
        jammer = SweepJammer(universe, budget)
    elif jammer_kind == "targeted":
        pick = derive_rng(seed, "jam-targets")
        jammer = TargetedJammer(
            {node: frozenset(pick.sample(universe, budget)) for node in range(n)}
        )
    else:
        raise ValueError(jammer_kind)
    result = run_local_broadcast(
        network,
        source=0,
        seed=seed,
        max_slots=500_000,
        jammer=jammer,
        require_completion=True,
    )
    return result.slots


@register(
    "E14",
    "COGCAST vs n-uniform jamming",
    "Theorem 18: local broadcast remains solvable under an n-uniform "
    "jammer of budget k' < c/2; effective overlap is c - 2k'",
)
def run(trials: int = 15, seed: int = 0, fast: bool = False) -> Table:
    n, c = 32, 16
    budgets = [0, 4] if fast else [0, 2, 4, 6]
    trials = min(trials, 5) if fast else trials

    rows = []
    for budget in budgets:
        seeds = trial_seeds(seed, f"E14-{budget}", trials)
        columns: dict[str, float] = {}
        for kind in ("random", "sweep", "targeted"):
            if budget == 0 and kind != "random":
                columns[kind] = columns["random"]
                continue
            columns[kind] = mean(
                [measure_jammed(c, n, budget, kind, s) for s in seeds]
            )
        effective = c - 2 * budget
        rows.append(
            (
                n,
                c,
                budget,
                effective,
                round(columns["random"], 1),
                round(columns["sweep"], 1),
                round(columns["targeted"], 1),
            )
        )
    return Table(
        experiment_id="E14",
        title="COGCAST completion under jamming (budget sweep)",
        claim="Theorem 18: completion degrades smoothly with budget, "
        "never failing while k' < c/2",
        columns=(
            "n",
            "c",
            "jam budget",
            "c - 2k'",
            "random jam",
            "sweep jam",
            "targeted jam",
        ),
        rows=tuple(rows),
        notes="every cell is a *completed* broadcast — the reduction's point",
    )
