"""E29 — the distribution tree's shape (Lemma 5's object, measured).

COGCOMP's phase four walks the distribution tree COGCAST leaves behind;
its O(n) step bound is shape-independent, but the tree's *shape* still
explains the constants: epidemic trees are shallow (later infections
attach all over the frontier, not in a chain), and on crowded spectra
the source's early broadcasts create large clusters.

Sweep ``n`` and record height, mean depth, max out-degree, and the
largest first-slot cluster — the ``k_i`` quantities from Theorem 10's
accounting.  Expected shape: height grows slowly (logarithmically-ish)
while n grows 16x, and ``sum(k_i) <= n`` holds exactly (it is the
theorem's bookkeeping identity).
"""

from __future__ import annotations

from repro.assignment import shared_core
from repro.core import DistributionTree, run_local_broadcast
from repro.core.clusters import clusters_from_trace, largest_cluster_per_slot
from repro.experiments.harness import Table, mean, trial_seeds
from repro.experiments.registry import register
from repro.sim import EventTrace, Network
from repro.sim.rng import derive_rng


def measure_tree(n: int, c: int, k: int, seed: int) -> dict[str, float]:
    """Tree-shape statistics from one completed broadcast."""
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, c, k, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    trace = EventTrace()
    result = run_local_broadcast(
        network, seed=seed, max_slots=500_000, trace=trace, require_completion=True
    )
    tree = DistributionTree.from_parents(0, result.parents)
    clusters = clusters_from_trace(trace, root=0)
    per_slot = largest_cluster_per_slot(clusters)
    depths = [tree.depth(node) for node in range(n)]
    degrees = [len(tree.children(node)) for node in range(n)]
    assert sum(info.size for info in clusters.values()) == n - 1
    return {
        "height": tree.height(),
        "mean_depth": sum(depths) / n,
        "max_degree": max(degrees),
        "sum_ki": sum(per_slot.values()),
        "largest_cluster": max(info.size for info in clusters.values()),
    }


@register(
    "E29",
    "Distribution-tree shape vs n (Lemma 5 / Theorem 10 accounting)",
    "Lemma 5's tree is shallow and wide; Theorem 10's sum(k_i) <= n "
    "bookkeeping holds exactly",
)
def run(trials: int = 10, seed: int = 0, fast: bool = False) -> Table:
    c, k = 16, 4
    ns = [32, 128] if fast else [32, 64, 128, 256, 512]
    trials = min(trials, 3) if fast else trials

    rows = []
    for n in ns:
        seeds = trial_seeds(seed, f"E29-{n}", trials)
        stats = [measure_tree(n, c, k, s) for s in seeds]
        rows.append(
            (
                n,
                c,
                k,
                round(mean([s["height"] for s in stats]), 1),
                round(mean([s["mean_depth"] for s in stats]), 1),
                round(mean([s["max_degree"] for s in stats]), 1),
                round(mean([s["largest_cluster"] for s in stats]), 1),
                round(mean([s["sum_ki"] for s in stats]), 1),
                n - 1,
            )
        )
    return Table(
        experiment_id="E29",
        title="Distribution-tree shape across n",
        claim="height grows slowly while n grows 16x; sum(k_i) never "
        "exceeds n (Theorem 10's identity)",
        columns=(
            "n",
            "c",
            "k",
            "height",
            "mean depth",
            "max degree",
            "largest cluster",
            "sum k_i",
            "n - 1",
        ),
        rows=tuple(rows),
        notes=(
            "sum k_i <= n - 1 by the theorem's accounting (every "
            "non-source node is in exactly one cluster); the sub-linear "
            "height column is why epidemic trees aggregate fast"
        ),
    )
