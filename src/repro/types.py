"""Shared type aliases and exception hierarchy for the repro package.

The whole library speaks in terms of three scalar identifiers:

- :data:`NodeId` — the unique identity of a node (the paper assumes each
  node has a unique id; we use non-negative integers).
- :data:`Channel` — a *physical* (global) channel identifier, i.e. the
  label a global oracle would use.  Algorithms never see these directly;
  they see *local labels* (plain ``int`` indices ``0..c-1``) which a
  :class:`repro.sim.channels.Network` translates per node.
- :data:`Slot` — a zero-based synchronous time slot index.
"""

from __future__ import annotations

NodeId = int
Channel = int
Slot = int
LocalLabel = int


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidAssignmentError(ReproError):
    """A channel assignment violates the model's structural invariants.

    Raised when a node has the wrong number of channels, duplicate
    channels, or a pair of nodes overlaps on fewer than ``k`` channels.
    """


class ProtocolViolationError(ReproError):
    """A protocol produced an action the model does not allow.

    For example: broadcasting on a local label outside ``0..c-1``, or
    emitting an action after having declared termination.
    """


class SimulationError(ReproError):
    """The simulation could not complete (e.g. slot budget exhausted)."""


class GameError(ReproError):
    """A hitting-game player or referee violated the game's rules."""
