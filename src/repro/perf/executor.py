"""The deterministic process-pool mapper and the jobs default.

Design constraints, in priority order:

1. **Determinism.**  Work items are fully specified (function + seeded
   arguments) before anything is dispatched, and results are
   reassembled in submission order — a parallel run returns exactly
   the list a serial run would.  Nothing about scheduling, worker
   count, or completion order can leak into the results.
2. **Graceful degradation.**  Parallelism is an optimization, never a
   requirement: with ``jobs=1``, a single work item, an unpicklable
   function (lambdas, closures), or an environment where process
   pools cannot start, the map silently runs in-process and returns
   the same values.
3. **No new dependencies.**  Everything here is standard library.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

#: Process-wide default for ``jobs=None``; see :func:`set_default_jobs`.
_DEFAULT_JOBS = 1


def set_default_jobs(jobs: int | None) -> None:
    """Set the worker count used when a trial loop passes ``jobs=None``.

    ``None`` or ``0`` selects ``os.cpu_count()``.  The CLI's ``--jobs``
    flag calls this once at startup so every experiment trial loop and
    campaign in the process fans out without threading a parameter
    through 29 ``run()`` signatures.
    """
    global _DEFAULT_JOBS
    if jobs is None or jobs == 0:
        _DEFAULT_JOBS = os.cpu_count() or 1
    elif jobs < 0:
        raise ValueError("jobs must be non-negative")
    else:
        _DEFAULT_JOBS = jobs


def default_jobs() -> int:
    """The current process-wide default worker count."""
    return _DEFAULT_JOBS


def resolve_jobs(jobs: int | None) -> int:
    """Resolve a ``jobs`` argument to a concrete worker count.

    ``None`` defers to the process default (see :func:`set_default_jobs`),
    ``0`` means ``os.cpu_count()``, and any positive value is itself.
    """
    if jobs is None:
        return _DEFAULT_JOBS
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be non-negative")
    return jobs


def pool_fingerprint() -> dict[str, Any]:
    """Ambient facts about this process's fan-out environment.

    Recorded by the determinism sanitizer (``repro sanitize``) alongside
    each capture, so a divergence report names the conditions it was
    produced under: pool start method, core count, the process-wide
    jobs default, the interpreter version, and the hash seed.  None of
    these may influence results — that is exactly what the sanitizer
    checks — so they appear only in the report's provenance, never in
    the bit-diffed records.
    """
    import multiprocessing
    import sys

    return {
        "start_method": multiprocessing.get_start_method(allow_none=True)
        or "default",
        "cpu_count": os.cpu_count() or 1,
        "default_jobs": _DEFAULT_JOBS,
        "python": sys.version.split()[0],
        "hashseed": os.environ.get("PYTHONHASHSEED", "random"),
    }


def _picklable(payload: Any) -> bool:
    """Whether *payload* survives pickling (the pool's transport)."""
    try:
        pickle.dumps(payload)
    except Exception:
        return False
    return True


def _init_worker(backend_name: str) -> None:
    """Propagate the parent's default engine backend into a pool worker.

    Per-process defaults (``set_default_backend``, i.e. the CLI's
    ``--backend``) don't cross the process boundary on spawn-start
    platforms, so the pool snapshots the parent's default at fan-out
    time.  Deliberately exception-proof: an initializer that raises
    breaks the whole pool, and backend selection is an optimization —
    a worker that falls back to the default backend still returns
    correct results.
    """
    try:
        from repro.sim.backends import set_default_backend

        set_default_backend(backend_name)
    except Exception:
        pass


def pmap_trials(
    fn: Callable[..., Any],
    argument_tuples: Sequence[tuple],
    *,
    jobs: int | None = None,
) -> list[Any]:
    """Map *fn* over argument tuples, in order, optionally in parallel.

    Returns ``[fn(*args) for args in argument_tuples]`` — exactly, and
    in exactly that order.  With an effective worker count above one,
    the calls are fanned across a :class:`ProcessPoolExecutor`; results
    are reassembled in submission order so downstream statistics are
    byte-identical to the serial loop.  The first work item that raises
    propagates its exception, as the serial loop's would.

    Falls back to the in-process loop whenever parallelism cannot be
    both safe and worthwhile: an effective ``jobs`` of one, fewer than
    two work items, an *fn* or argument that cannot be pickled, or a
    platform where a process pool cannot be created.
    """
    items = [tuple(args) for args in argument_tuples]
    workers = min(resolve_jobs(jobs), len(items))
    if workers <= 1:
        return [fn(*args) for args in items]
    if not _picklable((fn, items)):
        return [fn(*args) for args in items]
    from repro.sim.backends import default_backend_name

    try:
        executor = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(default_backend_name(),),
        )
    except (ImportError, NotImplementedError, OSError, ValueError):
        return [fn(*args) for args in items]
    with executor:
        futures = [executor.submit(fn, *args) for args in items]
        return [future.result() for future in futures]
