"""Merging per-worker JSONL telemetry into one validated stream.

A :class:`repro.obs.telemetry.TelemetrySink` is a single append-only
file handle, which worker processes must not share.  The supported
pattern is: give each worker its own file (via
:func:`worker_telemetry_path`), let it open a private sink there, and
after the pool drains, fold every worker file into the main sink with
:func:`merge_telemetry`.  Records are re-validated on the way through,
so a merged telemetry file is well-formed by construction, exactly
like a directly-written one.  Merge order is the caller's path order
(deterministic — pass paths in worker index order), never completion
order.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Iterable

from repro.obs.telemetry import TelemetrySink, read_telemetry


def worker_telemetry_path(base: str | Path, index: int) -> Path:
    """The conventional per-worker telemetry file next to *base*.

    ``telemetry.jsonl`` becomes ``telemetry.worker3.jsonl`` for worker
    index 3 — distinct per worker, easy to glob, safe to merge.
    """
    base = Path(base)
    return base.with_name(f"{base.stem}.worker{index}{base.suffix}")


def merge_telemetry(
    paths: Iterable[str | Path],
    sink: TelemetrySink,
    *,
    strict: bool = True,
    remove: bool = False,
    dedupe: bool = False,
) -> int:
    """Fold worker telemetry files into *sink*; return records merged.

    Every record is re-validated by the sink's own ``emit``.  Missing
    files are skipped (a worker that ran no instrumented work writes
    nothing).  With ``remove=True`` each worker file is deleted after
    its records are safely through the sink.

    With ``dedupe=True`` the merge is provenance-aware: a record whose
    store key ``(config_hash, seed, code_version)`` *and* volatile-free
    content were already merged in this call is skipped — so merging
    overlapping shards (a retried worker, a re-run partition) yields
    each stored run once, matching the run store's first-write-wins
    semantics.  Records without a provenance block never dedupe, and
    distinct anomalies of one run survive because content is part of
    the key.
    """
    from repro.obs.provenance import canonical_json, run_key

    merged = 0
    seen: set[tuple[tuple[str, int, str], str]] = set()
    for path in paths:
        path = Path(path)
        if not path.exists():
            continue
        records: list[dict[str, Any]] = read_telemetry(path, strict=strict)
        for record in records:
            if dedupe:
                key = run_key(record)
                if key is not None:
                    content = canonical_json(
                        {
                            name: value
                            for name, value in record.items()
                            if name not in ("elapsed_s", "timings", "resources")
                        }
                    )
                    fingerprint = (key, content)
                    if fingerprint in seen:
                        continue
                    seen.add(fingerprint)
            sink.emit(record)
            merged += 1
        if remove:
            os.remove(path)
    return merged


def merged_metrics(
    paths: Iterable[str | Path], *, strict: bool = True
) -> dict[str, Any]:
    """Consolidate the metric snapshots embedded in worker telemetry.

    Reads every record of every existing path (in the caller's path
    order — pass worker index order for determinism, exactly like
    :func:`merge_telemetry`) and merges each record's ``metrics``
    snapshot with :func:`repro.obs.metrics.merge_snapshots`: counters
    and histograms add, gauges keep the last write with folded
    extremes.  Workers that wrote no telemetry (or no snapshots)
    simply contribute nothing, so the serial-fallback and
    worker-failure paths of :func:`repro.perf.pmap_trials` merge
    cleanly.  Returns an empty-registry snapshot when no snapshots
    were found.
    """
    from repro.obs.metrics import merge_snapshots

    snapshots: list[dict[str, Any]] = []
    for path in paths:
        path = Path(path)
        if not path.exists():
            continue
        for record in read_telemetry(path, strict=strict):
            snapshot = record.get("metrics")
            if snapshot is not None:
                snapshots.append(snapshot)
    return merge_snapshots(snapshots)
