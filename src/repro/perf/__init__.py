"""repro.perf — deterministic parallel trial execution.

Every experiment in the reproduction runs seeded, independent trials:
:func:`repro.experiments.harness.trial_seeds` and
:func:`repro.sim.rng.derive_seed` give each trial its own random
stream, so trials are embarrassingly parallel *by construction*.  This
package exploits that structure without giving up a single bit of
reproducibility:

- :func:`pmap_trials` — an order-preserving process-pool map.  Results
  come back in submission order, so tables and confidence intervals
  are byte-identical to a serial run; it degrades gracefully to
  in-process execution when ``jobs=1``, when the work is not
  picklable, or when a process pool cannot be created.
- :func:`set_default_jobs` / :func:`default_jobs` — a process-wide
  default worker count, set once by ``python -m repro run --jobs N``
  and consulted by every trial loop that does not pass ``jobs``
  explicitly.
- :func:`merge_telemetry` — folds per-worker JSONL telemetry files
  into one validated stream through a
  :class:`repro.obs.telemetry.TelemetrySink`; :func:`merged_metrics`
  consolidates the metric snapshots embedded in those files into one
  :func:`repro.obs.metrics.merge_snapshots` result, deterministically
  in path order.

Isolation rule: like :mod:`repro.obs`, this package is harness-side
machinery.  Protocol modules (anything defining a
:class:`repro.sim.protocol.Protocol` subclass) must never import it —
lint rule R4 enforces the boundary.
"""

from repro.perf.executor import (
    default_jobs,
    pmap_trials,
    pool_fingerprint,
    resolve_jobs,
    set_default_jobs,
)
from repro.perf.merge import merge_telemetry, merged_metrics, worker_telemetry_path

__all__ = [
    "default_jobs",
    "merge_telemetry",
    "merged_metrics",
    "pmap_trials",
    "pool_fingerprint",
    "resolve_jobs",
    "set_default_jobs",
    "worker_telemetry_path",
]
