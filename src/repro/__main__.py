"""``python -m repro`` — alias for the repro-experiments CLI."""

import sys

from repro.cli import main

sys.exit(main())
