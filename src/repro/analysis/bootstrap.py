"""Bootstrap resampling for head-to-head comparisons.

Experiment rows often compare two sample means (COGCAST vs a baseline).
A normal-approximation CI on each mean is fine for the means
themselves, but a CI on their *ratio* — the speedup the paper's claims
are about — is cleaner via the bootstrap.  Dependency-free, seeded, and
small-sample-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.sim.rng import derive_rng


@dataclass(frozen=True, slots=True)
class BootstrapCI:
    """A percentile bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    resamples: int

    def contains(self, value: float) -> bool:
        """Whether *value* lies inside the interval."""
        return self.low <= value <= self.high


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[Sequence[float]], float],
    *,
    resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for an arbitrary statistic of one sample."""
    if not samples:
        raise ValueError("empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = derive_rng(seed, "bootstrap")
    n = len(samples)
    estimates = sorted(
        statistic([samples[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, int(alpha * resamples))
    high_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    return BootstrapCI(
        estimate=statistic(samples),
        low=estimates[low_index],
        high=estimates[high_index],
        resamples=resamples,
    )


def speedup_ci(
    baseline: Sequence[float],
    treatment: Sequence[float],
    *,
    resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapCI:
    """Bootstrap CI on ``mean(baseline) / mean(treatment)``.

    The two samples are resampled independently (independent trials).
    A CI entirely above 1.0 is a statistically solid "treatment wins".
    """
    if not baseline or not treatment:
        raise ValueError("empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = derive_rng(seed, "speedup-bootstrap")

    def resample(samples: Sequence[float]) -> float:
        n = len(samples)
        return sum(samples[rng.randrange(n)] for _ in range(n)) / n

    estimates = sorted(
        resample(baseline) / max(1e-12, resample(treatment))
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, int(alpha * resamples))
    high_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    point = (sum(baseline) / len(baseline)) / (sum(treatment) / len(treatment))
    return BootstrapCI(
        estimate=point,
        low=estimates[low_index],
        high=estimates[high_index],
        resamples=resamples,
    )
