"""Statistics over repeated randomized trials.

The paper's guarantees are "with high probability" statements; the
experiments estimate them by running many seeded trials and summarizing
the sample.  Everything here is dependency-light (no numpy needed for
the core path) so the library works in minimal environments; the
heavier fitting code lives in :mod:`repro.analysis.fitting`.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-style summary of one measured quantity."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.2f} sd={self.stdev:.2f} "
            f"min={self.minimum:.0f} p50={self.p50:.0f} p95={self.p95:.0f} "
            f"max={self.maximum:.0f}"
        )


def summarize(samples: Sequence[float]) -> Summary:
    """Summarize a non-empty sample."""
    if not samples:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(float(x) for x in samples)
    return Summary(
        count=len(ordered),
        mean=statistics.fmean(ordered),
        stdev=statistics.stdev(ordered) if len(ordered) > 1 else 0.0,
        minimum=ordered[0],
        p50=percentile(ordered, 0.50),
        p95=percentile(ordered, 0.95),
        maximum=ordered[-1],
    )


def percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of a pre-sorted sample."""
    if not ordered:
        raise ValueError("empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    fraction = position - low
    # a + f*(b - a) rather than a*(1-f) + b*f: exact when a == b, and
    # monotone in f, so percentiles never invert by an ulp.
    return ordered[low] + fraction * (ordered[high] - ordered[low])


def mean_confidence_interval(
    samples: Sequence[float], *, z: float = 1.96
) -> tuple[float, float, float]:
    """``(mean, low, high)`` normal-approximation confidence interval.

    ``z`` defaults to the 95% two-sided quantile.  For one-sample
    experiment rows this is plenty; no t-correction is applied since
    trial counts are modest but the underlying quantities are bounded.
    """
    if not samples:
        raise ValueError("empty sample")
    mean = statistics.fmean(samples)
    if len(samples) == 1:
        return (mean, mean, mean)
    half = z * statistics.stdev(samples) / math.sqrt(len(samples))
    return (mean, mean - half, mean + half)


def success_rate(outcomes: Iterable[bool]) -> float:
    """Fraction of successful trials."""
    outcomes = list(outcomes)
    if not outcomes:
        raise ValueError("empty sample")
    return sum(outcomes) / len(outcomes)


def wilson_interval(successes: int, trials: int, *, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a success probability.

    Used to report w.h.p. claims honestly: "all 50/50 trials succeeded"
    becomes a lower confidence bound rather than a bare 1.0.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes outside 0..trials")
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean of positive samples (for speedup ratios)."""
    if not samples:
        raise ValueError("empty sample")
    if any(x <= 0 for x in samples):
        raise ValueError("geometric mean requires positive samples")
    return math.exp(statistics.fmean(math.log(x) for x in samples))
