"""Empirical distribution tools for completion-time analysis.

The paper's statements are about tails ("with high probability") and
expectations; these helpers let experiments and users interrogate both:
ECDFs, tail probabilities, and a geometric-distribution fit (the
natural model for "first success" quantities like rendezvous and the
Theorem 16 first-landing slot).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Ecdf:
    """An empirical cumulative distribution function over a sample."""

    sorted_samples: tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Ecdf":
        if not samples:
            raise ValueError("empty sample")
        return cls(tuple(sorted(float(x) for x in samples)))

    def __call__(self, x: float) -> float:
        """P(X <= x) under the empirical measure."""
        return bisect_right(self.sorted_samples, x) / len(self.sorted_samples)

    def tail(self, x: float) -> float:
        """P(X > x)."""
        return 1.0 - self(x)

    def quantile(self, q: float) -> float:
        """Smallest sample value with ECDF >= q."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile {q} outside (0, 1]")
        index = math.ceil(q * len(self.sorted_samples)) - 1
        return self.sorted_samples[max(0, index)]

    def support(self) -> tuple[float, float]:
        return (self.sorted_samples[0], self.sorted_samples[-1])


@dataclass(frozen=True, slots=True)
class GeometricFit:
    """A geometric model ``P(X = t) = p (1-p)^{t-1}`` fitted to a sample.

    ``p`` is the per-slot success probability; ``mean`` is ``1/p``.
    ``ks_distance`` is the Kolmogorov–Smirnov statistic between the
    fitted CDF and the ECDF — small values mean the "memoryless first
    success" story fits (as it should for uniform-hopping rendezvous).
    """

    p: float
    ks_distance: float

    @property
    def mean(self) -> float:
        return 1.0 / self.p

    def cdf(self, t: float) -> float:
        if t < 1:
            return 0.0
        return 1.0 - (1.0 - self.p) ** math.floor(t)


def fit_geometric(samples: Sequence[float]) -> GeometricFit:
    """Maximum-likelihood geometric fit (support starting at 1).

    MLE: ``p = n / sum(samples)``.  Raises on non-positive samples.
    """
    if not samples:
        raise ValueError("empty sample")
    if any(x < 1 for x in samples):
        raise ValueError("geometric samples must be >= 1")
    p = len(samples) / sum(samples)
    p = min(1.0, p)
    ecdf = Ecdf.from_samples(samples)
    distinct = sorted(set(ecdf.sorted_samples))
    fit = GeometricFit(p=p, ks_distance=0.0)
    ks = max(abs(ecdf(t) - fit.cdf(t)) for t in distinct)
    return GeometricFit(p=p, ks_distance=ks)


def tail_at_multiples(
    samples: Sequence[float], base: float, multiples: Sequence[float]
) -> list[tuple[float, float]]:
    """``[(m, P(X > m * base))]`` — how fast the tail decays past a bound.

    Used to quantify "w.h.p." claims: e.g. the fraction of COGCAST runs
    exceeding 1x, 2x, 3x the Theorem 4 predictor.
    """
    if base <= 0:
        raise ValueError("base must be positive")
    ecdf = Ecdf.from_samples(samples)
    return [(m, ecdf.tail(m * base)) for m in multiples]
