"""Terminal-friendly curve rendering for experiment output.

The paper has no figures, but several of its phenomena are curves —
the epidemic growth of COGCAST, backoff success probability, tail
decay.  These helpers render such series as aligned ASCII, so examples
and reports can *show* a shape without any plotting dependency.
"""

from __future__ import annotations

from typing import Sequence


def ascii_curve(
    points: Sequence[tuple[float, float]],
    *,
    width: int = 50,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render (x, y) points as a horizontal bar chart, one row per point.

    Bars are scaled to the maximum y; each row shows the x value, the
    bar, and the numeric y.  Intended for monotone-ish series of up to
    a few dozen points.
    """
    if not points:
        raise ValueError("no points to render")
    if width < 1:
        raise ValueError("width must be positive")
    max_y = max(y for _, y in points)
    scale = width / max_y if max_y > 0 else 0.0
    x_width = max(len(_fmt(x)) for x, _ in points)
    x_width = max(x_width, len(x_label))
    lines = [f"{x_label.rjust(x_width)} | {y_label}"]
    for x, y in points:
        bar = "#" * max(0, round(y * scale))
        lines.append(f"{_fmt(x).rjust(x_width)} | {bar} {_fmt(y)}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line sparkline using eighth-block characters.

    Scales to the min/max of the series; constant series render as a
    mid-level line.
    """
    if not values:
        raise ValueError("no values to render")
    blocks = "▁▂▃▄▅▆▇█"
    low = min(values)
    high = max(values)
    if high == low:
        return blocks[3] * len(values)
    span = high - low
    out = []
    for value in values:
        index = int((value - low) / span * (len(blocks) - 1))
        out.append(blocks[index])
    return "".join(out)


def histogram(
    samples: Sequence[float],
    *,
    bins: int = 10,
    width: int = 40,
) -> str:
    """An ASCII histogram of a sample, equal-width bins."""
    if not samples:
        raise ValueError("no samples to render")
    if bins < 1:
        raise ValueError("bins must be positive")
    low = min(samples)
    high = max(samples)
    if high == low:
        return f"[{_fmt(low)}] {'#' * width} {len(samples)}"
    bin_width = (high - low) / bins
    counts = [0] * bins
    for sample in samples:
        index = min(bins - 1, int((sample - low) / bin_width))
        counts[index] += 1
    peak = max(counts)
    lines = []
    for index, count in enumerate(counts):
        start = low + index * bin_width
        end = start + bin_width
        bar = "#" * max(0, round(count / peak * width))
        lines.append(f"[{_fmt(start)}, {_fmt(end)}) {bar} {count}")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.2f}"
