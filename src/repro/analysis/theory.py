"""Closed-form bounds from the paper, as executable formulas.

Every experiment compares a measured quantity against one of these
predictions.  Asymptotic bounds carry an explicit ``constant`` argument;
the defaults were calibrated once against the simulator (see
EXPERIMENTS.md) and give comfortable w.h.p. margins for the parameter
ranges the experiments sweep.
"""

from __future__ import annotations

import math


def lg(x: float) -> float:
    """Base-2 logarithm clamped below at 1 (the paper's ``lg n`` factors
    always multiply a running time, so a sub-1 value is never intended)."""
    return max(1.0, math.log2(x))


def cogcast_slot_bound(n: int, c: int, k: int, *, constant: float = 8.0) -> int:
    """Theorem 4: COGCAST informs all nodes within
    ``constant * (c/k) * max{1, c/n} * lg n`` slots w.h.p.

    Used both as the experiment yardstick and as COGCOMP's phase-one
    length ``l``.
    """
    if n < 1 or not 1 <= k <= c:
        raise ValueError(f"invalid parameters n={n}, c={c}, k={k}")
    bound = constant * (c / k) * max(1.0, c / n) * lg(n)
    return max(1, math.ceil(bound))


def cogcomp_slot_bound(n: int, c: int, k: int, *, constant: float = 8.0) -> int:
    """Theorem 10: COGCOMP aggregates within
    ``O((c/k) * max{1, c/n} * lg n + n)`` slots w.h.p.

    The additive ``n`` term appears three times in the implementation
    (phase two census, and phase four's O(n) steps of 3 slots), so the
    concrete budget is ``2l + n + 3 * O(n)``; this helper returns the
    asymptotic form for plotting, not the scheduling constant.
    """
    return cogcast_slot_bound(n, c, k, constant=constant) + max(1, n)


def rendezvous_expected_slots(c: int, k: int) -> float:
    """Uniform randomized rendezvous between two nodes meets in
    ``c^2/k`` expected slots (Section 1): each slot both nodes land on a
    common channel with probability ``k/c^2``."""
    if not 1 <= k <= c:
        raise ValueError(f"invalid parameters c={c}, k={k}")
    return c * c / k


def rendezvous_broadcast_bound(n: int, c: int, k: int, *, constant: float = 3.0) -> int:
    """The straightforward broadcast baseline: every node independently
    rendezvouses with the source, so ``O((c^2/k) * lg n)`` slots suffice
    for all ``n - 1`` nodes w.h.p. (Section 1)."""
    bound = constant * rendezvous_expected_slots(c, k) * lg(n)
    return max(1, math.ceil(bound))


def rendezvous_aggregation_bound(n: int, c: int, k: int, *, constant: float = 3.0) -> int:
    """The straightforward aggregation baseline: ``O(c^2 n / k)`` slots
    (Section 1) — every node must win a rendezvous slot with the source,
    and fair contention serializes the ``n - 1`` reports."""
    bound = constant * (c * c / k) * max(1, n)
    return max(1, math.ceil(bound))


def bipartite_hitting_lower_bound(c: int, k: int, *, beta: float = 2.0) -> float:
    """Lemma 11: no player wins the (c, k)-bipartite hitting game within
    ``c^2 / (alpha k)`` rounds with probability 1/2, where
    ``alpha = 2 * (beta / (beta - 1))^2`` and ``k <= c / beta``."""
    if beta <= 1:
        raise ValueError("beta must exceed 1")
    alpha = 2.0 * (beta / (beta - 1.0)) ** 2
    return c * c / (alpha * k)


def complete_hitting_lower_bound(c: int) -> float:
    """Lemma 14: the c-complete bipartite hitting game needs at least
    ``c / 3`` rounds to win with probability 1/2."""
    return c / 3.0


def broadcast_lower_bound_local_labels(n: int, c: int, k: int) -> float:
    """Theorem 15: local broadcast under local channel labels needs
    ``Omega((c/k) * max{1, c/n})`` slots for success probability 1/2.
    Returned without the hidden constant (use for shape comparisons)."""
    return (c / k) * max(1.0, c / n)


def broadcast_lower_bound_global_labels(c: int, k: int) -> float:
    """Theorem 16: the *exact* expectation derived in the proof — the
    source's first landing on an overlapping channel takes
    ``(c + 1) / (k + 1)`` expected slots in the shared-core construction."""
    return (c + 1) / (k + 1)


def aggregation_lower_bound(n: int, k: int) -> float:
    """Section 5 discussion: when all nodes share the same ``k``
    channels, ``Omega(n/k)`` slots are needed for every node to report."""
    return n / k


def decay_backoff_bound(n: int, *, constant: float = 4.0) -> int:
    """Footnote 4: decay-style backoff delivers one message w.h.p.
    within ``O(log^2 n)`` micro-slots."""
    return max(1, math.ceil(constant * lg(n) ** 2))


def hopping_together_expected_slots(C: int, k: int) -> float:
    """Section 6 discussion: with global labels and all pairs overlapping
    on the same ``k`` channels, scanning the ``C``-channel universe in
    lockstep hits an overlapping channel in ``O(C/k)`` expected slots."""
    return C / k
