"""Scaling-law fits: does a measured curve track a predicted shape?

The reproduction never expects to match the paper's hidden constants;
what must hold is the *shape* — e.g. COGCAST's completion time growing
linearly in ``(c/k) * max{1, c/n} * lg n``.  The helpers here fit
``measured ~ a * predictor (+ b)`` by least squares and report the
coefficient of determination, so every experiment can assert
"linear in the predicted control parameter, R^2 >= threshold".
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True, slots=True)
class LinearFit:
    """Result of a least-squares fit ``y ~ slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares with intercept.

    Raises ``ValueError`` on degenerate input (fewer than two points or
    zero variance in ``xs``).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    mean_x = statistics.fmean(xs)
    mean_y = statistics.fmean(ys)
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("xs has zero variance")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)


def fit_proportional(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Least squares through the origin: ``y ~ slope * x``.

    The natural model when the predictor already carries the full
    asymptotic shape (the intercept would only absorb noise).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 1:
        raise ValueError("need at least one point")
    sxx = sum(x * x for x in xs)
    if sxx == 0:
        raise ValueError("xs are all zero")
    slope = sum(x * y for x, y in zip(xs, ys)) / sxx
    mean_y = statistics.fmean(ys)
    ss_res = sum((y - slope * x) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=0.0, r_squared=r_squared)


def ratio_stability(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Coefficient of variation of the per-point ratios ``y/x``.

    A shape-match diagnostic that is robust when the sweep spans few
    points: if ``y`` really is ``Theta(x)``, the ratios should be flat
    (CV well below 1).
    """
    ratios = [y / x for x, y in zip(xs, ys) if x > 0]
    if not ratios:
        raise ValueError("no positive predictor values")
    mean = statistics.fmean(ratios)
    if mean == 0:
        return math.inf
    if len(ratios) == 1:
        return 0.0
    return statistics.stdev(ratios) / mean
