"""Analysis utilities: closed-form bounds, trial statistics, scaling fits."""

from repro.analysis.bootstrap import BootstrapCI, bootstrap_ci, speedup_ci
from repro.analysis.curves import ascii_curve, histogram, sparkline
from repro.analysis.distributions import (
    Ecdf,
    GeometricFit,
    fit_geometric,
    tail_at_multiples,
)
from repro.analysis.fitting import (
    LinearFit,
    fit_linear,
    fit_proportional,
    ratio_stability,
)
from repro.analysis.stats import (
    Summary,
    geometric_mean,
    mean_confidence_interval,
    percentile,
    success_rate,
    summarize,
    wilson_interval,
)
from repro.analysis.theory import (
    aggregation_lower_bound,
    bipartite_hitting_lower_bound,
    broadcast_lower_bound_global_labels,
    broadcast_lower_bound_local_labels,
    cogcast_slot_bound,
    cogcomp_slot_bound,
    complete_hitting_lower_bound,
    decay_backoff_bound,
    hopping_together_expected_slots,
    lg,
    rendezvous_aggregation_bound,
    rendezvous_broadcast_bound,
    rendezvous_expected_slots,
)

__all__ = [
    "BootstrapCI",
    "Ecdf",
    "GeometricFit",
    "LinearFit",
    "Summary",
    "ascii_curve",
    "bootstrap_ci",
    "fit_geometric",
    "histogram",
    "sparkline",
    "speedup_ci",
    "tail_at_multiples",
    "aggregation_lower_bound",
    "bipartite_hitting_lower_bound",
    "broadcast_lower_bound_global_labels",
    "broadcast_lower_bound_local_labels",
    "cogcast_slot_bound",
    "cogcomp_slot_bound",
    "complete_hitting_lower_bound",
    "decay_backoff_bound",
    "fit_linear",
    "fit_proportional",
    "geometric_mean",
    "hopping_together_expected_slots",
    "lg",
    "mean_confidence_interval",
    "percentile",
    "ratio_stability",
    "rendezvous_aggregation_bound",
    "rendezvous_broadcast_bound",
    "rendezvous_expected_slots",
    "success_rate",
    "summarize",
    "wilson_interval",
]
