# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test lint bench experiments report examples all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	PYTHONPATH=src $(PYTHON) -m repro lint src/repro

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro run all

report:
	$(PYTHON) -m repro report --output experiments_report.md

examples:
	for script in examples/*.py; do $(PYTHON) $$script || exit 1; done

all: lint test bench
