# Convenience targets for the reproduction repository.
#
# Every target that runs repository code sets PYTHONPATH=src, matching
# the tier-1 command (`PYTHONPATH=src python -m pytest -x -q`), so none
# of them silently require an installed package.

PYTHON ?= python
JOBS ?= 1

.PHONY: install test lint lint-all lint-baseline bench bench-save bench-check sanitize experiments report examples obs-demo trace-demo metrics-demo vector-demo store-demo all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/

lint:
	PYTHONPATH=src $(PYTHON) -m repro lint src/repro

# Everything CI gates: shipped sources plus tests, benchmarks, and
# examples, with known findings subtracted via the checked-in baseline.
lint-all:
	PYTHONPATH=src $(PYTHON) -m repro lint src/repro tests benchmarks examples \
		--baseline lint-baseline.json

# Regenerate the baseline.  Ratchet direction is down: run this to
# shrink the baseline after fixing known findings, never to absorb new
# ones (fix or justify-suppress those instead).
lint-baseline:
	PYTHONPATH=src $(PYTHON) -m repro lint src/repro tests benchmarks examples \
		--baseline lint-baseline.json --update-baseline

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Record one benchmark datapoint in the perf trajectory (BENCH_*.json).
bench-save:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-json=BENCH_$$(date +%Y%m%d).json

# Gate the newest BENCH_*.json datapoint against the rest of the
# trajectory (warn-only until the history has 3 comparable datapoints).
bench-check:
	PYTHONPATH=src $(PYTHON) -m repro bench check --history 'BENCH_*.json' \
		--report bench_report.json

# Dual-run determinism sanitizer: re-run a small seeded experiment
# under perturbed PYTHONHASHSEED / jobs / backend and bit-diff the
# captured tables and telemetry (exit 1 on any divergence; the runtime
# twin of lint rules R3/R6/R7/R11-R13).
sanitize:
	PYTHONPATH=src $(PYTHON) -m repro sanitize E01 --fast --trials 2 \
		--report sanitize_report.json

experiments:
	PYTHONPATH=src $(PYTHON) -m repro run all --jobs $(JOBS)

report:
	PYTHONPATH=src $(PYTHON) -m repro report --output experiments_report.md --jobs $(JOBS)

examples:
	for script in examples/*.py; do PYTHONPATH=src $(PYTHON) $$script || exit 1; done

obs-demo:
	PYTHONPATH=src $(PYTHON) -m repro run E01 --fast --trials 2 --telemetry telemetry.jsonl
	PYTHONPATH=src $(PYTHON) -m repro obs validate telemetry.jsonl
	PYTHONPATH=src $(PYTHON) -m repro obs summary telemetry.jsonl
	PYTHONPATH=src $(PYTHON) -m repro obs anomalies telemetry.jsonl

# Instrumented run with the metrics registry: emit telemetry with
# embedded metric snapshots, then render them (Prometheus text format)
# and diff the file against itself (zero significant deltas expected).
metrics-demo:
	PYTHONPATH=src $(PYTHON) -m repro run E01 --fast --trials 2 \
		--telemetry metrics_demo.jsonl
	PYTHONPATH=src $(PYTHON) -m repro obs summary metrics_demo.jsonl --metrics
	PYTHONPATH=src $(PYTHON) -m repro obs diff metrics_demo.jsonl metrics_demo.jsonl

# The vector engine backend end to end: report which backends this
# environment can run, then run E01 on the columnar kernel (numpy) and
# on the exact engine — the tables must match statistically (Tier B;
# see docs/performance.md "Backends").
vector-demo:
	PYTHONPATH=src $(PYTHON) -m repro --version
	PYTHONPATH=src $(PYTHON) -m repro run E01 --fast --trials 2 --backend vector
	PYTHONPATH=src $(PYTHON) -m repro run E01 --fast --trials 2 --backend exact

# The run store end to end: emit telemetry, ingest it twice (the
# second pass dedups every run — first-write-wins by (config hash,
# seed, code version)), then run a group-by query over the manifest.
store-demo:
	PYTHONPATH=src $(PYTHON) -m repro run E01 --fast --trials 2 \
		--telemetry store_demo.jsonl
	PYTHONPATH=src $(PYTHON) -m repro obs ingest store_demo.jsonl --store runstore
	PYTHONPATH=src $(PYTHON) -m repro obs ingest store_demo.jsonl --store runstore
	PYTHONPATH=src $(PYTHON) -m repro obs query runstore --kind experiment \
		--group-by experiment --stat rows

# Export Chrome-trace/Perfetto timelines for both protocols (load the
# JSON at ui.perfetto.dev or chrome://tracing).
trace-demo:
	PYTHONPATH=src $(PYTHON) -m repro obs export-trace --protocol cogcast \
		--n 12 --c 6 --k 2 --seed 0 -o trace_cogcast.json
	PYTHONPATH=src $(PYTHON) -m repro obs export-trace --protocol cogcomp \
		--n 12 --c 6 --k 2 --seed 0 -o trace_cogcomp.json --spans spans_cogcomp.json

all: lint test bench
