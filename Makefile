# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test lint bench experiments report examples obs-demo all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	PYTHONPATH=src $(PYTHON) -m repro lint src/repro

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro run all

report:
	$(PYTHON) -m repro report --output experiments_report.md

examples:
	for script in examples/*.py; do $(PYTHON) $$script || exit 1; done

obs-demo:
	PYTHONPATH=src $(PYTHON) -m repro run E01 --fast --trials 2 --telemetry telemetry.jsonl
	PYTHONPATH=src $(PYTHON) -m repro obs validate telemetry.jsonl
	PYTHONPATH=src $(PYTHON) -m repro obs summary telemetry.jsonl

all: lint test bench
