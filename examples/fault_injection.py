#!/usr/bin/env python3
"""Fault injection: COGCAST's robustness claim, demonstrated.

Section 1 argues the epidemic structure "can gracefully handle changes
to the network conditions, temporary faults, and so on" precisely
because every node does the same thing every slot.  This example
injects increasingly severe faults into one broadcast and watches the
completion time degrade — smoothly, never catastrophically:

- sleepers: nodes whose radios go dark for a window mid-broadcast;
- crashers: nodes that die early and stay dead;
- a flaky source: the source itself sleeps through a window.

Run:  python examples/fault_injection.py
"""

from __future__ import annotations

import random
import statistics

from repro import assignment
from repro.core import CogCast
from repro.sim import (
    CrashFault,
    Engine,
    Network,
    OutageFault,
    make_views,
    with_faults,
)


def run_with_plan(network: Network, plan: dict, seed: int, goal_nodes) -> int:
    views = make_views(network, seed)
    protocols = [CogCast(v, is_source=(v.node_id == 0)) for v in views]
    wrapped = with_faults(protocols, plan)
    engine = Engine(network, wrapped, seed=seed)
    result = engine.run(
        100_000,
        stop_when=lambda _: all(protocols[node].informed for node in goal_nodes),
    )
    assert result.completed
    return result.slots


def main() -> None:
    n, c, k = 32, 8, 2
    trials = 15
    rng = random.Random(0)
    network = Network.static(
        assignment.shared_core(n, c, k, rng).shuffled_labels(rng), validate=False
    )
    everyone = list(range(n))

    def mean_slots(plan_builder, goal=lambda victims: everyone) -> float:
        samples = []
        for seed in range(trials):
            fault_rng = random.Random(1000 + seed)
            plan, victims = plan_builder(fault_rng)
            samples.append(run_with_plan(network, plan, seed, goal(victims)))
        return statistics.mean(samples)

    print(f"COGCAST, n={n}, c={c}, k={k}; mean completion over {trials} runs\n")

    baseline = mean_slots(lambda r: ({}, []))
    print(f"  no faults                          : {baseline:6.1f} slots")

    def sleepers(r):
        victims = r.sample(range(1, n), 8)
        plan = {
            v: [OutageFault(((r.randrange(0, 20), r.randrange(20, 60)),))]
            for v in victims
        }
        return plan, victims

    print(f"  8 nodes sleep through random window: {mean_slots(sleepers):6.1f} slots")

    def crashers(r):
        victims = r.sample(range(1, n), 8)
        plan = {v: [CrashFault(r.randrange(2, 15))] for v in victims}
        return plan, victims

    crash_mean = mean_slots(
        crashers, goal=lambda victims: [x for x in everyone if x not in victims]
    )
    print(f"  8 nodes crash early (survivors)    : {crash_mean:6.1f} slots")

    def flaky_source(r):
        return {0: [OutageFault(((2, 25),))]}, []

    print(f"  source sleeps slots 2-24           : {mean_slots(flaky_source):6.1f} slots")

    print("\nthe epidemic re-forms around any of these: informed survivors\n"
          "keep broadcasting, so coverage always completes.")


if __name__ == "__main__":
    main()
