#!/usr/bin/env python3
"""From TV towers to theorems: a whitespace deployment end to end.

The paper's introduction motivates cognitive radio with secondary users
scavenging leftover TV-band spectrum.  This example builds that world
literally — licensed transmitters with protection radii, a clustered
fleet of secondary devices — derives each device's channel set from
geography, measures the *emergent* (c, k), and then runs both of the
paper's algorithms on the derived network, including under primary-user
churn (microphones switching on and off).

Run:  python examples/whitespace_world.py
"""

from __future__ import annotations

import random

from repro import core, sim
from repro.analysis import cogcast_slot_bound
from repro.assignment import summarize
from repro.spectrum import churning_schedule, min_overlap_over, random_world


def main() -> None:
    rng = random.Random(2015)
    world = random_world(
        num_channels=24,
        num_primaries=10,
        num_secondaries=20,
        area=120.0,
        primary_radius=35.0,
        rng=rng,
        cluster_radius=30.0,
    )
    print(f"world: {len(world.primaries)} primaries on a 24-channel band, "
          f"{len(world.secondaries)} secondary devices\n")

    # -- Derive the algorithmic model from geography ------------------------
    plan = world.to_assignment().shuffled_labels(rng)
    summary = summarize(plan)
    print("derived network (availability from primary coverage):")
    print(f"  c (channels per device)  : {summary.channels_per_node}")
    print(f"  emergent pairwise overlap: k = {summary.min_overlap} "
          f"(mean {summary.mean_overlap:.1f}, max {summary.max_overlap})")
    print(f"  channels shared by all   : {summary.shared_by_all}\n")

    network = sim.Network.static(plan, validate=False)
    n, c, k = summary.num_nodes, summary.channels_per_node, summary.min_overlap
    budget = cogcast_slot_bound(n, c, k)

    # -- Broadcast and aggregate on the derived network ----------------------
    broadcast = core.run_local_broadcast(network, seed=1, max_slots=budget)
    print(f"COGCAST: completed={broadcast.completed} in {broadcast.slots} slots "
          f"(Theorem 4 budget at measured k: {budget})")

    readings = [rng.gauss(-90.0, 4.0) for _ in range(n)]
    agg = core.run_data_aggregation(
        network, readings, seed=2, aggregator=core.MaxAggregator()
    )
    print(f"COGCOMP: worst interference {agg.value:.1f} dB "
          f"in {agg.total_slots} slots\n")

    # -- Primary-user churn: the dynamic model, physically motivated --------
    schedule = churning_schedule(world, seed=3, off_probability=0.25)
    effective_k = min_overlap_over(schedule, 40)
    dynamic = core.run_local_broadcast(sim.Network(schedule), seed=3, max_slots=10_000)
    print("with per-slot primary churn (25% off-probability):")
    print(f"  effective k over 40 slots: {effective_k}")
    print(f"  COGCAST completed={dynamic.completed} in {dynamic.slots} slots")
    print("\nthe same code path the theorems analyse, fed from geography\n"
          "instead of hand-built channel sets.")


if __name__ == "__main__":
    main()
