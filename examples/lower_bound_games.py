#!/usr/bin/env python3
"""Playing the paper's lower-bound games (Section 6) by hand.

Three demonstrations:

1. the (c, k)-bipartite hitting game — every player strategy's median
   win round clears Lemma 11's ``c^2/(8k)`` bound;
2. the c-complete game vs Lemma 14's ``c/3``;
3. the Lemma 12 reduction — COGCAST itself, hosted inside the hitting-
   game simulation, becomes a player whose round count is capped by
   ``min{c, n}`` per simulated slot.

Run:  python examples/lower_bound_games.py
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import bipartite_hitting_lower_bound, complete_hitting_lower_bound
from repro.core import CogCast
from repro.games import (
    BroadcastReductionPlayer,
    DiagonalPlayer,
    ExhaustivePlayer,
    UniformRandomPlayer,
    bipartite_hitting_game,
    complete_hitting_game,
    play,
)


def main() -> None:
    trials = 200
    c, k = 24, 4

    # -- 1. the (c, k)-bipartite hitting game -------------------------------
    print(f"(c={c}, k={k})-bipartite hitting game, {trials} games per player")
    bound = bipartite_hitting_lower_bound(c, k)
    print(f"  Lemma 11 bound: no strategy wins within c^2/(8k) = {bound:.1f} "
          "rounds with probability 1/2")
    for name, make in [
        ("uniform random", lambda r: UniformRandomPlayer(c, r)),
        ("exhaustive    ", lambda r: ExhaustivePlayer(c, r)),
        ("diagonal sweep", lambda r: DiagonalPlayer(c)),
    ]:
        rounds = []
        for seed in range(trials):
            game = bipartite_hitting_game(c, k, random.Random(seed))
            won_in = play(game, make(random.Random(seed + 10_000)), max_rounds=50 * c * c)
            rounds.append(won_in)
        print(f"  {name}: median win round = {statistics.median(rounds):.0f}")

    # -- 2. the c-complete game ---------------------------------------------
    print(f"\nc-complete game (c={c}); Lemma 14 bound: c/3 = "
          f"{complete_hitting_lower_bound(c):.1f}")
    rounds = []
    for seed in range(trials):
        game = complete_hitting_game(c, random.Random(seed))
        rounds.append(play(game, UniformRandomPlayer(c, random.Random(seed + 1)),
                           max_rounds=100 * c * c))
    print(f"  uniform player: median win round = {statistics.median(rounds):.0f}")

    # -- 3. COGCAST as a hitting-game player (Lemma 12) ----------------------
    n = 16
    print(f"\nLemma 12 reduction: COGCAST hosted as a player (n={n})")
    for seed in range(3):
        game = bipartite_hitting_game(c, k, random.Random(seed))
        player = BroadcastReductionPlayer(
            game,
            lambda view: CogCast(view, is_source=(view.node_id == 0)),
            n=n, k=k, seed=seed,
        )
        outcome = player.run(max_slots=50 * c * c)
        cap = outcome.proposals_per_slot_bound * outcome.simulated_slots
        print(f"  run {seed}: won after {outcome.game_rounds} game rounds in "
              f"{outcome.simulated_slots} simulated slots "
              f"(cap min(c,n)*slots = {cap}; rounds <= cap: "
              f"{outcome.game_rounds <= cap})")


if __name__ == "__main__":
    main()
