#!/usr/bin/env python3
"""Footnote 1 in action: randomized rendezvous with seed exchange.

The rendezvous literature prefers determinism partly because, once two
nodes meet, deterministic schedules let them predict each other
forever.  Footnote 1 counters that randomized nodes can simply swap
PRNG seeds at the first meeting — after which they rendezvous every
slot.  This example measures inter-meeting gaps with and without the
swap, and compares the deterministic stay-and-scan scheme's guarantee.

Run:  python examples/repeated_rendezvous.py
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import rendezvous_expected_slots
from repro.baselines import repeated_rendezvous_gaps, stay_and_scan_pairwise


def main() -> None:
    c, k = 16, 4
    trials = 200
    print(f"pairwise rendezvous, c={c}, k={k}; "
          f"theory: first meeting ~ c^2/k = {rendezvous_expected_slots(c, k):.0f} slots\n")

    with_swap = [
        repeated_rendezvous_gaps(c, k, seed, meetings=5, exchange_seeds=True)
        for seed in range(trials)
    ]
    without = [
        repeated_rendezvous_gaps(c, k, seed, meetings=5, exchange_seeds=False)
        for seed in range(trials)
    ]
    deterministic = [
        stay_and_scan_pairwise(c, k, random.Random(seed)) for seed in range(trials)
    ]

    first = statistics.mean(gaps[0] for gaps in with_swap)
    later_swap = statistics.mean(g for gaps in with_swap for g in gaps[1:])
    later_memoryless = statistics.mean(g for gaps in without for g in gaps[1:])

    print("randomized + seed exchange (footnote 1):")
    print(f"  first meeting : {first:7.1f} slots (the one-time search)")
    print(f"  later meetings: {later_swap:7.2f} slots each (deterministic after swap)")
    print("randomized, memoryless:")
    print(f"  later meetings: {later_memoryless:7.1f} slots each (pays the search every time)")
    print("deterministic stay-and-scan:")
    print(f"  first meeting : {statistics.mean(deterministic):7.1f} slots mean, "
          f"{max(deterministic)} worst (guarantee: {c * c})")
    print("\nconclusion: randomization matches determinism on repeat meetings\n"
          "after one seed swap, while keeping the k-fold faster search.")


if __name__ == "__main__":
    main()
