#!/usr/bin/env python3
"""Quickstart: local broadcast and data aggregation in a cognitive radio network.

Builds a 32-node single-hop network where every node can tune 8 channels
and every pair is guaranteed to overlap on at least 2, then:

1. runs COGCAST (epidemic local broadcast) and prints how the message
   spread, slot by slot;
2. runs COGCOMP (data aggregation) and prints the phase budget and the
   aggregate the source computed.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import assignment, core, sim
from repro.analysis import cogcast_slot_bound


def main() -> None:
    n, c, k = 32, 8, 2
    seed = 2015  # PODC'15

    # -- Build the network -------------------------------------------------
    # A "shared core" band: k channels everyone holds, plus c - k private
    # channels per node.  shuffled_labels() gives each node its own
    # arbitrary channel numbering — the paper's local-label model.
    rng = random.Random(seed)
    plan = assignment.shared_core(n, c, k, rng).shuffled_labels(rng)
    network = sim.Network.static(plan)
    print(f"network: n={n} nodes, c={c} channels each, pairwise overlap >= {k}")
    print(f"channel universe: {len(plan.universe)} physical channels\n")

    # -- Local broadcast (COGCAST) -----------------------------------------
    trace = sim.EventTrace()
    result = core.run_local_broadcast(
        network, source=0, seed=seed, max_slots=10_000, body="hello, spectrum!",
        trace=trace,
    )
    print("COGCAST local broadcast")
    print(f"  completed: {result.completed} in {result.slots} slots")
    print(f"  Theorem 4 budget: {cogcast_slot_bound(n, c, k)} slots")

    from repro.analysis import ascii_curve
    from repro.sim import informed_curve

    curve = informed_curve(trace, root=0, num_nodes=n)
    print("  epidemic growth (informed nodes per slot):")
    rendered = ascii_curve(
        [(float(slot), float(count)) for slot, count in curve],
        width=32, x_label="slot", y_label="informed",
    )
    print("    " + rendered.replace("\n", "\n    "))

    tree = core.DistributionTree.from_parents(0, result.parents)
    print(f"  distribution tree: height {tree.height()}, "
          f"source has {len(tree.children(0))} direct children\n")

    # -- Data aggregation (COGCOMP) ----------------------------------------
    values = [float(node * node) for node in range(n)]
    agg = core.run_data_aggregation(
        network, values, source=0, seed=seed + 1,
        aggregator=core.SumAggregator(),
    )
    print("COGCOMP data aggregation (sum of node values)")
    print(f"  completed: {agg.completed}")
    print(f"  phases: one={agg.phase1_slots}, two={agg.phase2_slots}, "
          f"three={agg.phase3_slots}, four={agg.phase4_slots} slots")
    print(f"  total: {agg.total_slots} slots")
    print(f"  aggregate at source: {agg.value} (expected {sum(values)})")
    assert agg.value == sum(values)


if __name__ == "__main__":
    main()
