#!/usr/bin/env python3
"""Scenario: broadcast through an n-uniform jamming adversary (Theorem 18).

A multi-channel network faces a jammer that can silence up to k'
channels *per node, per slot* — the strongest (n-uniform) adversary in
the paper's taxonomy.  Theorem 18 reduces this to the dynamic cognitive
radio model with pairwise overlap c - 2k', so COGCAST keeps its
guarantee as long as k' < c/2.

The example sweeps the jamming budget across three jammer archetypes
and shows completion time degrading smoothly — and broadcast failing
only when the budget reaches c (the jammer can blanket every channel).

Run:  python examples/jamming_resilience.py
"""

from __future__ import annotations

import random

from repro import assignment, core, sim


def run_under_jammer(c: int, n: int, budget: int, kind: str, seed: int) -> int | None:
    """Completion slots, or None if the broadcast failed to finish."""
    plan = assignment.identical(n, c)
    rng = random.Random(seed)
    network = sim.Network.static(plan.shuffled_labels(rng), validate=False)
    universe = sorted(plan.universe)
    jammer: sim.Jammer | None
    if budget == 0:
        jammer = None
    elif kind == "random":
        jammer = sim.RandomJammer(universe, budget, random.Random(seed + 1))
    elif kind == "sweep":
        jammer = sim.SweepJammer(universe, budget)
    else:
        targets = {
            node: frozenset(random.Random(seed + 2 + node).sample(universe, budget))
            for node in range(n)
        }
        jammer = sim.TargetedJammer(targets)
    result = core.run_local_broadcast(
        network, source=0, seed=seed, max_slots=3_000, jammer=jammer,
    )
    return result.slots if result.completed else None


def main() -> None:
    n, c = 24, 12
    trials = 5
    print(f"jamming resilience: n={n} nodes, c={c} channels, "
          f"n-uniform jammer with budget k' per node per slot\n")
    print(f"{'budget':>6}  {'c-2k_':>6}  {'random':>10}  {'sweep':>10}  {'targeted':>10}")
    for budget in [0, 2, 4, 5, c]:
        cells = []
        for kind in ("random", "sweep", "targeted"):
            finished = [
                run_under_jammer(c, n, budget, kind, seed)
                for seed in range(trials)
            ]
            done = [s for s in finished if s is not None]
            if len(done) == trials:
                cells.append(f"{sum(done) / len(done):8.1f}")
            else:
                cells.append(f"fail {trials - len(done)}/{trials}")
        effective = c - 2 * budget
        print(f"{budget:>6}  {effective:>6}  "
              f"{cells[0]:>10}  {cells[1]:>10}  {cells[2]:>10}")
    print("\nmean completion slots (or failure count); budget = c blankets\n"
          "the whole band, so nothing can get through — exactly the k' < c/2\n"
          "threshold Theorem 18 needs.")


if __name__ == "__main__":
    main()
