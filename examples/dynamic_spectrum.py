#!/usr/bin/env python3
"""Scenario: broadcast while primary users churn the spectrum every slot.

The discussion in Section 4: COGCAST needs no static assignment — as
long as each pair of nodes shares at least k channels *in each slot*,
the epidemic spreads on schedule.  Here the entire channel map is
re-drawn every slot (primary users arriving and departing), which would
break any algorithm relying on schedules or learned channel sets.

The example also demonstrates Theorem 17's flip side: with k < c there
is no *guaranteed* finite completion — so we report the empirical
distribution over many runs instead of a single number.

Run:  python examples/dynamic_spectrum.py
"""

from __future__ import annotations

from repro import assignment, core, sim
from repro.analysis import cogcast_slot_bound, summarize


def main() -> None:
    n, c, k = 40, 10, 2
    print(f"dynamic spectrum: n={n}, c={c}, k={k}; "
          "full channel re-assignment every slot\n")

    slots_dynamic: list[int] = []
    slots_static: list[int] = []
    for seed in range(25):
        schedule = assignment.dynamic_shared_core_schedule(n, c, k, seed)
        dynamic_network = sim.Network(schedule)
        result = core.run_local_broadcast(
            dynamic_network, source=0, seed=seed, max_slots=100_000,
            require_completion=True,
        )
        slots_dynamic.append(result.slots)

        static_network = sim.Network.static(schedule.at(0), validate=False)
        result = core.run_local_broadcast(
            static_network, source=0, seed=seed, max_slots=100_000,
            require_completion=True,
        )
        slots_static.append(result.slots)

    print("completion slots over 25 runs:")
    print(f"  static  assignment: {summarize(slots_static)}")
    print(f"  dynamic assignment: {summarize(slots_dynamic)}")
    print(f"  Theorem 4 budget  : {cogcast_slot_bound(n, c, k)} slots")
    print("\nCOGCAST never consults history, so per-slot churn does not\n"
          "hurt it — the same Theorem 4 guarantee holds (Section 4\n"
          "discussion), while any schedule-based protocol would stall.")


if __name__ == "__main__":
    main()
