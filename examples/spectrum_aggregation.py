#!/usr/bin/env python3
"""Scenario: TV-whitespace sensor fleet computing a quality-of-service snapshot.

The paper's motivating use case for data aggregation: "analyzing network
condition snapshots to calculate a quality of service metric".  A fleet
of secondary-user devices shares leftover TV-band spectrum; each device
holds a noisy local measurement (interference level, in dB) and the
gateway wants network-wide statistics.

This example runs COGCOMP three times with different associative
aggregators — max, mean (as a sum/count pair), and a full collect for
verification — and compares the slot cost against the rendezvous
baseline the paper's introduction dismisses.

Run:  python examples/spectrum_aggregation.py
"""

from __future__ import annotations

import random

from repro import assignment, core, sim
from repro.baselines import run_rendezvous_aggregation


def main() -> None:
    n, c, k = 48, 12, 3
    seed = 7

    rng = random.Random(seed)
    plan = assignment.random_with_core(n, c, k, rng, universe_size=60)
    network = sim.Network.static(plan.shuffled_labels(rng))
    print(f"whitespace fleet: {n} devices, {c} usable channels each, "
          f"overlap guarantee k={k}")

    # Synthetic interference readings: a quiet band with two hot spots.
    readings = [rng.gauss(-95.0, 3.0) for _ in range(n)]
    readings[17] = -61.5  # microphone user near device 17
    readings[33] = -64.2  # another primary-user transient
    print(f"ground truth: max={max(readings):.1f} dB, "
          f"mean={sum(readings) / n:.1f} dB\n")

    # -- Worst interference anywhere (max) ---------------------------------
    worst = core.run_data_aggregation(
        network, readings, source=0, seed=seed,
        aggregator=core.MaxAggregator(),
    )
    assert worst.completed
    print(f"COGCOMP max : {worst.value:.1f} dB in {worst.total_slots} slots")

    # -- Fleet-average interference (mean via associative carrier) ---------
    mean_agg = core.MeanAggregator()
    average = core.run_data_aggregation(
        network, readings, source=0, seed=seed + 1, aggregator=mean_agg,
    )
    assert average.completed
    print(f"COGCOMP mean: {mean_agg.finalize(average.value):.1f} dB "
          f"in {average.total_slots} slots")

    # -- Full snapshot (collect) — exact verification -----------------------
    snapshot = core.run_data_aggregation(
        network, readings, source=0, seed=seed + 2,
        aggregator=core.CollectAggregator(),
    )
    assert snapshot.completed
    assert snapshot.value == {node: readings[node] for node in range(n)}
    print(f"COGCOMP collect: all {len(snapshot.value)} readings delivered "
          f"in {snapshot.total_slots} slots")

    # -- The baseline the paper's introduction dismisses --------------------
    baseline = run_rendezvous_aggregation(
        network, readings, source=0, seed=seed, max_slots=2_000_000,
    )
    print(f"\nrendezvous baseline: {baseline.slots} slots "
          f"({baseline.slots / snapshot.total_slots:.1f}x slower than COGCOMP)")


if __name__ == "__main__":
    main()
