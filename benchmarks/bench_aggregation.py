"""Benchmarks E05, E06, E15: the COGCOMP experiments."""

from __future__ import annotations

from repro.experiments import get


def test_e05_cogcomp_scaling(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E05").run(trials=2, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # Phase four stays within a constant multiple of 3n slots.
    assert all(ratio < 3.0 for ratio in table.column("phase4/3n"))


def test_e06_aggregation_head_to_head(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E06").run(trials=2, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    assert all(speedup > 0.5 for speedup in table.column("speedup"))


def test_e15_aggregation_lower_bound(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E15").run(trials=2, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # Phase four respects the Omega(n/k) bound in every row.
    assert all(table.column(">= bound"))
