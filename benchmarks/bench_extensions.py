"""Benchmarks E17–E20: the extension experiments
(fault tolerance, message overhead, the Theorem 18 transform,
seed-exchange rendezvous)."""

from __future__ import annotations

from repro.experiments import get


def test_e17_fault_tolerance(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E17").run(trials=5, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # Faults slow things down but never below half speed of 4x baseline.
    baseline = table.rows[0][4]
    assert all(row[4] < 8 * baseline for row in table.rows)


def test_e18_message_overhead(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E18").run(trials=3, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # Associative aggregators stay constant; collect exceeds them.
    assert len(set(table.column("sum bits"))) == 1
    assert len(set(table.column("count bits"))) == 1
    for row_sum, row_collect in zip(table.column("sum bits"), table.column("collect bits")):
        assert row_collect > row_sum


def test_e19_jamming_equivalence(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E19").run(trials=5, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # Both sides completed every cell (failures raise inside the runner).
    assert all(row[4] > 0 and row[5] > 0 for row in table.rows)


def test_e20_seeded_rendezvous(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E20").run(trials=10, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # Post-swap meetings are every-slot, the footnote's punchline.
    assert all(gap == 1.0 for gap in table.column("post-swap gaps"))


def test_e21_determinism_tradeoff(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E21").run(trials=30, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # The deterministic guarantee holds on every instance.
    for det_max, guarantee in zip(table.column("det max"), table.column("c^2 guarantee")):
        assert det_max <= guarantee


def test_e22_adversarial_search(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E22").run(seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    assert all(table.column("within budget"))


def test_e23_stack_composition(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E23").run(trials=3, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # The expanded stack tracks the ideal model closely.
    assert all(0.5 <= ratio <= 2.0 for ratio in table.column("exp/ideal"))


def test_e24_collision_ablation(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E24").run(trials=2, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    assert all(0.4 <= ratio <= 2.5 for ratio in table.column("cast ratio"))


def test_e25_epidemic_stages(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E25").run(trials=3, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # Stage one is genuinely multiplicative and a minority of the run.
    assert all(growth > 1.2 for growth in table.column("growth/slot"))
    assert all(frac < 0.8 for frac in table.column("stage1 frac"))


def test_e26_whitespace_worlds(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E26").run(trials=5, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    assert all(
        p == "-" or p >= 0.8 for p in table.column("P(within budget)")
    )


def test_e27_gossip_scaling(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E27").run(trials=2, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # The extension's finding: naive concurrent gossip loses for m >= 2.
    assert table.column("seq/gossip")[-1] < 1.0


def test_e28_staggered_activation(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E28").run(trials=3, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # The post-window overhead never exceeds ~2x the baseline.
    assert all(ratio <= 2.0 for ratio in table.column("(slots-W)/base"))


def test_e29_tree_shape(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E29").run(trials=2, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # Theorem 10's accounting identity holds in every row.
    for ki, bound in zip(table.column("sum k_i"), table.column("n - 1")):
        assert ki <= bound
