"""Benchmarks for the content-addressed run store: ingest and query.

The run store must stay cheap enough to fold whole campaign shards
into after every sweep, so these benchmarks time
:meth:`repro.obs.store.RunStore.ingest` and
:func:`repro.obs.query.run_query` at 10^4 synthetic run records —
distinct (config hash, seed) pairs across four protocol/size configs.
A regression shows up through ``repro bench check`` exactly like the
engine benchmarks.
"""

from __future__ import annotations

import json

from repro.obs.provenance import CODE_VERSION, provenance_block
from repro.obs.query import parse_filters, run_query
from repro.obs.store import RunStore
from repro.obs.telemetry import TELEMETRY_SCHEMA_VERSION

RECORDS = 10_000
CONFIGS = (
    {"protocol": "cogcast", "n": 100, "c": 20, "k": 4, "backend": "exact"},
    {"protocol": "cogcast", "n": 1000, "c": 40, "k": 8, "backend": "exact"},
    {"protocol": "cogcomp", "n": 100, "c": 20, "k": 4, "backend": "exact"},
    {"protocol": "cogcomp", "n": 1000, "c": 40, "k": 8, "backend": "vector"},
)


def _synthetic_record(config: dict, seed: int) -> dict:
    """A schema-valid run record stamped like the real runners stamp."""
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "kind": "run",
        "protocol": config["protocol"],
        "seed": seed,
        "n": config["n"],
        "c": config["c"],
        "k": config["k"],
        "universe": config["c"],
        "slots": 40 + (seed % 17),
        "outcome": "completed",
        "fast_path": False,
        "backend": config["backend"],
        "provenance": provenance_block(
            dict(config, kind="run"), code_version=CODE_VERSION
        ),
    }


def _write_shard(path) -> None:
    """10^4 synthetic runs: 4 configs x 2500 seeds, one JSONL shard."""
    per_config = RECORDS // len(CONFIGS)
    with open(path, "w", encoding="utf-8") as handle:
        for config in CONFIGS:
            for seed in range(per_config):
                handle.write(json.dumps(_synthetic_record(config, seed)))
                handle.write("\n")


def test_store_ingest_10k(benchmark, tmp_path):
    shard = tmp_path / "shard.jsonl"
    _write_shard(shard)
    stores = iter(range(1_000_000))

    def ingest():
        # A fresh root per round so every ingest is a cold first write.
        store = RunStore(tmp_path / f"store{next(stores)}")
        return store.ingest([shard])

    report = benchmark.pedantic(ingest, rounds=3, iterations=1)
    assert report.ingested == RECORDS
    assert report.deduplicated == 0


def test_store_query_10k(benchmark, tmp_path):
    shard = tmp_path / "shard.jsonl"
    _write_shard(shard)
    store = RunStore(tmp_path / "store")
    store.ingest([shard])
    filters = parse_filters(["protocol=cogcast", "n>=1000"])

    def query():
        return run_query(
            store, filters=filters, group_by=["backend"], stat="slots"
        )

    rows = benchmark.pedantic(query, rounds=3, iterations=1)
    assert rows[0]["count"] == RECORDS // len(CONFIGS)
