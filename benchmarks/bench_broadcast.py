"""Benchmarks E01–E04: the COGCAST experiments and the broadcast baseline.

Each benchmark regenerates its experiment table in fast mode; the timed
quantity is the full sweep (workload generation + simulation + fits).
"""

from __future__ import annotations

from repro.experiments import get


def test_e01_cogcast_scaling_n(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E01").run(trials=3, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    assert table.rows


def test_e02_cogcast_large_c(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E02").run(trials=3, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # Reproduction check: quadratic growth in c — the last row's mean is
    # far above a linear extrapolation of the first.
    means = table.column("mean slots")
    assert means[-1] > 2.5 * means[0]


def test_e03_cogcast_k_sweep(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E03").run(trials=3, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # Inverse dependence on k: larger overlap, faster completion.
    means = table.column("mean slots")
    assert means == sorted(means, reverse=True)


def test_e04_broadcast_head_to_head(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E04").run(trials=3, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # The paper's winner wins every row.
    assert all(speedup > 1.0 for speedup in table.column("speedup"))
