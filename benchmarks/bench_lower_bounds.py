"""Benchmarks E07–E10: hitting games, the reduction, the global-label bound."""

from __future__ import annotations

from repro.experiments import get


def test_e07_bipartite_hitting(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E07").run(trials=15, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    assert all(table.column("bound holds"))


def test_e08_complete_hitting(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E08").run(trials=15, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    assert all(table.column("bound holds"))


def test_e09_reduction(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E09").run(trials=8, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    assert all(table.column("game ok"))
    assert all(table.column("slots ok"))


def test_e10_global_label_bound(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E10").run(trials=100, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # The optimal scan sits within 15% of the exact expectation.
    assert all(0.85 < ratio < 1.15 for ratio in table.column("scan/exact"))
