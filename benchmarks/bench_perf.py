"""Benchmarks for the performance layer: engine fast path, parallel trials.

``test_engine_fast_path`` vs ``test_engine_general_path`` time the SAME
workload — eight seeded, uninstrumented, static-assignment COGCAST runs
driven to completion — through the two engine kernels; the ratio of
their means is the fast-path speedup recorded in ``BENCH_*.json``
(acceptance floor: 1.5x).  Engine construction happens in untimed
setup, so the numbers isolate ``Engine.run``.

``test_trials_serial`` vs ``test_trials_parallel`` time the same
16-trial COGCAST sweep through ``map_trials`` with one worker and with
four; on a multi-core runner the ratio shows the trial-scaling win
(on a single-core box the parallel number just pays pool overhead —
the results are identical either way, which the tests assert).
"""

from __future__ import annotations

from functools import partial

from repro.assignment import shared_core
from repro.core.cogcast import CogCast
from repro.experiments.e01_cogcast_scaling_n import measure_cogcast_slots
from repro.experiments.harness import map_trials, trial_seeds
from repro.sim import Network
from repro.sim.engine import Engine, build_engine
from repro.sim.rng import derive_rng

N, C, K = 256, 16, 4
ENGINE_SEEDS = range(8)
TRIAL_N = 256
TRIALS = 16


def _build_engines(fast_path: bool) -> list[Engine]:
    engines = []
    for seed in ENGINE_SEEDS:
        rng = derive_rng(seed, "assignment")
        assignment = shared_core(N, C, K, rng).shuffled_labels(rng)
        network = Network.static(assignment, validate=False)
        engines.append(
            build_engine(
                network,
                lambda view: CogCast(view, is_source=(view.node_id == 0)),
                seed=seed,
                fast_path=fast_path,
            )
        )
    return engines


def _drive(engines: list[Engine]) -> int:
    total = 0
    for engine in engines:
        protocols = engine.protocols
        result = engine.run(
            100_000,
            stop_when=lambda _: all(p.informed for p in protocols),
        )
        total += result.slots
    return total


def test_engine_fast_path(benchmark):
    slots = benchmark.pedantic(
        _drive,
        setup=lambda: ((_build_engines(True),), {}),
        rounds=5,
        warmup_rounds=1,
    )
    assert slots > 0


def test_engine_general_path(benchmark):
    slots = benchmark.pedantic(
        _drive,
        setup=lambda: ((_build_engines(False),), {}),
        rounds=5,
        warmup_rounds=1,
    )
    assert slots > 0


def test_fast_path_engages_and_matches():
    """Not a timing: the two kernels must produce identical results."""
    fast = _build_engines(True)
    general = _build_engines(False)
    assert _drive(fast) == _drive(general)
    assert all(engine.fast_path_engaged for engine in fast)
    assert not any(engine.fast_path_engaged for engine in general)
    for a, b in zip(fast, general):
        assert [(p.informed, p.parent, p.informed_slot) for p in a.protocols] == [
            (p.informed, p.parent, p.informed_slot) for p in b.protocols
        ]


def _sweep(jobs: int) -> list[int]:
    return map_trials(
        partial(measure_cogcast_slots, TRIAL_N, C, K),
        trial_seeds(0, "bench-perf", TRIALS),
        jobs=jobs,
    )


def test_trials_serial(benchmark):
    samples = benchmark.pedantic(_sweep, args=(1,), rounds=3, warmup_rounds=1)
    assert len(samples) == TRIALS


def test_trials_parallel(benchmark):
    samples = benchmark.pedantic(_sweep, args=(4,), rounds=3, warmup_rounds=1)
    assert samples == _sweep(1)
