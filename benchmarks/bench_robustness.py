"""Benchmarks E11–E14: the discussion-section experiments
(hopping-together crossover, overlap patterns, dynamics, jamming)."""

from __future__ import annotations

from repro.experiments import get


def test_e11_hopping_vs_cogcast(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E11").run(trials=3, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # The paper's crossover: hopping wins on this instance, clearly.
    assert all(ratio > 2.0 for ratio in table.column("cogcast/hopping"))


def test_e12_overlap_patterns(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E12").run(trials=4, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # Same (n, c, k) => completion times within a small constant.
    assert all(spread < 6.0 for spread in table.column("max/min"))


def test_e13_dynamic_channels(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E13").run(trials=4, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # Dynamic churn neither breaks nor much slows COGCAST.
    assert all(0.2 < ratio < 4.0 for ratio in table.column("dyn/static"))


def test_e14_jamming(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E14").run(trials=4, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    # Every cell completed (non-completion would have raised inside).
    assert table.rows
