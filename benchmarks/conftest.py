"""Benchmark-suite configuration.

Each benchmark wraps one experiment's table generation (fast-mode sweep)
so ``pytest benchmarks/ --benchmark-only`` both times the reproduction
kernels and regenerates every table.  Run with ``-s`` to see the tables
inline; EXPERIMENTS.md records the full-size (non-fast) numbers.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show_table(capsys):
    """Print a rendered experiment table around pytest's capture."""

    def _show(table) -> None:
        with capsys.disabled():
            print()
            print(table.render())

    return _show
