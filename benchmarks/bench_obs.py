"""Benchmarks for the observability subsystem: probe overhead.

The ``repro.obs`` design promise is that an unattached probe costs the
engine one ``is None`` check per hook site.  These benchmarks time the
same seeded COGCAST run bare, with a streaming ``CountersProbe``, and
with the full instrument stack, so a hot-path regression shows up as a
ratio between adjacent rows of ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import random

from repro import assignment, sim
from repro.core import run_local_broadcast
from repro.obs import CountersProbe, HistogramProbe, MultiProbe, Profiler

SEED = 5
MAX_SLOTS = 2_000
ROUNDS = 5


def _network() -> sim.Network:
    """A mid-size shared-core instance, identical across benchmarks."""
    rng = random.Random(11)
    plan = assignment.shared_core(n=48, c=12, k=3, rng=rng).shuffled_labels(rng)
    return sim.Network.static(plan)


def test_broadcast_bare(benchmark):
    network = _network()
    result = benchmark.pedantic(
        lambda: run_local_broadcast(network, seed=SEED, max_slots=MAX_SLOTS),
        rounds=ROUNDS,
        iterations=1,
    )
    assert result.completed


def test_broadcast_counters_probe(benchmark):
    network = _network()

    def run():
        probe = CountersProbe()
        result = run_local_broadcast(
            network, seed=SEED, max_slots=MAX_SLOTS, probe=probe
        )
        return result, probe

    result, probe = benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    # The probe observes without perturbing: same run, same counters.
    assert result.completed
    assert probe.metrics().successes > 0


def test_broadcast_full_instrumentation(benchmark):
    network = _network()

    def run():
        probe = MultiProbe([CountersProbe(), HistogramProbe()])
        profiler = Profiler()
        result = run_local_broadcast(
            network, seed=SEED, max_slots=MAX_SLOTS, probe=probe, profiler=profiler
        )
        return result, profiler

    result, profiler = benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    assert result.completed
    assert set(profiler.sections()) == {
        "engine.collect",
        "engine.resolve",
        "engine.deliver",
    }
