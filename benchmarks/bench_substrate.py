"""Benchmark E16 plus raw simulator micro-benchmarks.

The micro-benchmarks time the substrate itself (slots/second at several
network shapes), so simulator regressions show up even when experiment
tables stay correct.
"""

from __future__ import annotations

import random

from repro.assignment import shared_core
from repro.core import CogCast, SumAggregator, run_data_aggregation
from repro.experiments import get
from repro.sim import Network, build_engine


def test_e16_decay_backoff(benchmark, show_table):
    table = benchmark.pedantic(
        lambda: get("E16").run(trials=40, seed=0, fast=True), rounds=1, iterations=1
    )
    show_table(table)
    assert all(p > 0.8 for p in table.column("P(within budget)"))


def _engine_for(n: int, c: int, k: int, seed: int = 0):
    rng = random.Random(seed)
    network = Network.static(
        shared_core(n, c, k, rng).shuffled_labels(rng), validate=False
    )

    def factory(view):
        return CogCast(view, is_source=(view.node_id == 0))

    return build_engine(network, factory, seed=seed)


def test_engine_throughput_small(benchmark):
    """100 slots of a 16-node / 8-channel COGCAST network."""

    def run():
        engine = _engine_for(16, 8, 2)
        for _ in range(100):
            engine.step()

    benchmark(run)


def test_engine_throughput_large(benchmark):
    """100 slots of a 256-node / 32-channel COGCAST network."""

    def run():
        engine = _engine_for(256, 32, 4)
        for _ in range(100):
            engine.step()

    benchmark(run)


def test_cogcomp_end_to_end_kernel(benchmark):
    """One full COGCOMP aggregation (n=32), the heaviest single kernel."""
    rng = random.Random(1)
    network = Network.static(
        shared_core(32, 8, 2, rng).shuffled_labels(rng), validate=False
    )
    values = [float(node) for node in range(32)]

    def run():
        result = run_data_aggregation(
            network, values, seed=7, aggregator=SumAggregator()
        )
        assert result.completed

    benchmark(run)


def test_assignment_generation_kernel(benchmark):
    """Generating + validating a 128-node shared-core assignment."""

    def run():
        rng = random.Random(3)
        shared_core(128, 16, 4, rng).shuffled_labels(rng).validate()

    benchmark(run)
