"""Benchmarks for the engine backends: exact vs vector columnar kernel.

``test_backend_exact_n10000`` vs ``test_backend_vector_n10000`` time the
SAME workload — one seeded, uninstrumented, static-assignment COGCAST
run at ``n = 10^4`` driven to completion — through the exact engine's
fast path and through the numpy columnar kernel; the ratio of their
means is the vector speedup recorded in ``BENCH_*.json`` (acceptance
floor: 10x).  ``test_backend_vector_n*`` sweep the columnar kernel from
``n = 10^2`` to ``n = 10^5`` so the trajectory shows how the speedup
scales with population size.  Engine construction happens in untimed
setup, so the numbers isolate ``run()``.

The vector benchmarks skip cleanly when numpy is not installed (the
``perf`` extra); the exact benchmarks always run.
"""

from __future__ import annotations

import pytest

from repro.assignment import shared_core
from repro.core.cogcast import CogCast
from repro.sim import Network
from repro.sim.backends import AllInformed, numpy_available
from repro.sim.engine import build_engine
from repro.sim.rng import derive_rng

C, K = 16, 4
HEADLINE_N = 10_000
SWEEP_NS = (100, 1_000, 10_000, 100_000)

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")


def _build(n: int, backend: str, seed: int = 0):
    rng = derive_rng(seed, "assignment")
    assignment = shared_core(n, C, K, rng).shuffled_labels(rng)
    network = Network.static(assignment, validate=False)
    return build_engine(
        network,
        lambda view: CogCast(view, is_source=(view.node_id == 0)),
        seed=seed,
        backend=backend,
    )


def _drive(engine) -> int:
    protocols = engine.protocols
    result = engine.run(100_000, stop_when=AllInformed(protocols))
    assert result.completed
    return result.slots


def test_backend_exact_n10000(benchmark):
    slots = benchmark.pedantic(
        _drive,
        setup=lambda: ((_build(HEADLINE_N, "exact"),), {}),
        rounds=3,
        warmup_rounds=1,
    )
    assert slots > 0


@needs_numpy
def test_backend_vector_n10000(benchmark):
    slots = benchmark.pedantic(
        _drive,
        setup=lambda: ((_build(HEADLINE_N, "vector"),), {}),
        rounds=5,
        warmup_rounds=1,
    )
    assert slots > 0


@needs_numpy
def test_backend_vector_replay_n10000(benchmark):
    """Tier-A mode: bit-exact draws through the columnar kernel."""
    slots = benchmark.pedantic(
        _drive,
        setup=lambda: ((_build(HEADLINE_N, "vector-replay"),), {}),
        rounds=3,
        warmup_rounds=1,
    )
    assert slots > 0


@needs_numpy
@pytest.mark.parametrize("n", SWEEP_NS, ids=[f"n{n}" for n in SWEEP_NS])
def test_backend_vector_sweep(benchmark, n):
    rounds = 2 if n >= 100_000 else 3
    slots = benchmark.pedantic(
        _drive,
        setup=lambda: ((_build(n, "vector"),), {}),
        rounds=rounds,
        warmup_rounds=1,
    )
    assert slots > 0


@needs_numpy
def test_vector_engages_and_matches():
    """Not a timing: the benchmarked kernels must agree.

    The replay kernel must be bit-identical to the exact engine; the
    numpy kernel must at least complete with the same informed set.
    """
    n = 1_000
    exact = _build(n, "exact")
    replay = _build(n, "vector-replay")
    vector = _build(n, "vector")
    exact_slots = _drive(exact)
    assert _drive(replay) == exact_slots
    assert _drive(vector) > 0
    assert replay.vector_engaged and vector.vector_engaged
    exact_states = [
        (p.informed, p.parent, p.informed_slot) for p in exact.protocols
    ]
    replay_states = [
        (p.informed, p.parent, p.informed_slot) for p in replay.protocols
    ]
    assert exact_states == replay_states
    assert all(p.informed for p in vector.protocols)
